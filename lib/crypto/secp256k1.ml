type fe = Uint256.t

let p =
  Uint256.of_hex
    "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f"

let n =
  Uint256.of_hex
    "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141"

let gx =
  Uint256.of_hex
    "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"

let gy =
  Uint256.of_hex
    "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8"

let p_minus_2 =
  Uint256.of_hex
    "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2d"

(* GLV endomorphism: (x, y) -> (beta*x, y) equals multiplication by
   lambda, where beta^3 = 1 (mod p) and lambda^3 = 1 (mod n). *)
let beta =
  Uint256.of_hex
    "7ae96a2b657c07106e64479eac3434e99cf0497512f58995c1396c28719501ee"

let lambda =
  Uint256.of_hex
    "5363ad4cc05c30e0a5261c028812645a122e22ea20816678df02967c1b23bd72"

(* ======================================================================
   Reference kernel.

   The straightforward implementation the fast kernel below is checked
   against: generic 16-bit-limb field arithmetic through
   [Uint256.mul_wide], plain MSB-first double-and-add, and the naive
   two-table Shamir ladder.  Kept alive verbatim so the differential and
   vector suites compare fast-vs-reference on every build; performance
   is irrelevant here.
   ====================================================================== *)

module Ref = struct
  let limb_mask = 0xFFFF
  let limb_bits = 16

  (* p = 2^256 - c with c = 2^32 + 977: fold the high half down repeatedly. *)
  let reduce_wide w =
    let significant a =
      let rec go i =
        if i < 0 then 0 else if a.(i) <> 0 then i + 1 else go (i - 1)
      in
      go (Array.length a - 1)
    in
    let current = ref (Array.copy w) in
    let len = ref (significant !current) in
    while !len > 16 do
      let a = !current in
      let hi_len = !len - 16 in
      (* acc = lo + (hi << 32) + 977 * hi *)
      let acc = Array.make (max 16 (hi_len + 3) + 1) 0 in
      Array.blit a 0 acc 0 16;
      (* add hi * 977 at offset 0 *)
      let carry = ref 0 in
      for i = 0 to hi_len - 1 do
        let s = acc.(i) + (a.(16 + i) * 977) + !carry in
        acc.(i) <- s land limb_mask;
        carry := s lsr limb_bits
      done;
      let k = ref hi_len in
      while !carry <> 0 do
        let s = acc.(!k) + !carry in
        acc.(!k) <- s land limb_mask;
        carry := s lsr limb_bits;
        incr k
      done;
      (* add hi << 32 (two limbs) *)
      carry := 0;
      for i = 0 to hi_len - 1 do
        let s = acc.(i + 2) + a.(16 + i) + !carry in
        acc.(i + 2) <- s land limb_mask;
        carry := s lsr limb_bits
      done;
      let k = ref (hi_len + 2) in
      while !carry <> 0 do
        let s = acc.(!k) + !carry in
        acc.(!k) <- s land limb_mask;
        carry := s lsr limb_bits;
        incr k
      done;
      current := acc;
      len := significant acc
    done;
    let r = Array.make 16 0 in
    Array.blit !current 0 r 0 (min 16 (Array.length !current));
    let v = ref (Uint256.of_limbs r) in
    while Uint256.compare !v p >= 0 do
      v := fst (Uint256.sub !v p)
    done;
    !v

  let fe_add a b = Uint256.add_mod a b p
  let fe_sub a b = Uint256.sub_mod a b p
  let fe_mul a b = reduce_wide (Uint256.mul_wide a b)
  let fe_sqr a = fe_mul a a

  let fe_pow b e =
    let result = ref Uint256.one and base = ref b in
    let nb = Uint256.num_bits e in
    for i = 0 to nb - 1 do
      if Uint256.bit e i then result := fe_mul !result !base;
      base := fe_sqr !base
    done;
    !result

  let fe_inv a =
    if Uint256.is_zero a then invalid_arg "Secp256k1.fe_inv: zero";
    fe_pow a p_minus_2

  let fe_of_int = Uint256.of_int
  let fe_dbl a = fe_add a a

  type point = { x : fe; y : fe; z : fe }

  let infinity = { x = Uint256.one; y = Uint256.one; z = Uint256.zero }
  let is_infinity pt = Uint256.is_zero pt.z
  let of_affine x y = { x; y; z = Uint256.one }
  let generator = of_affine gx gy

  let is_on_curve x y =
    if Uint256.compare x p >= 0 || Uint256.compare y p >= 0 then false
    else
      let lhs = fe_sqr y in
      let rhs = fe_add (fe_mul (fe_sqr x) x) (fe_of_int 7) in
      Uint256.equal lhs rhs

  let to_affine pt =
    if is_infinity pt then None
    else begin
      let zinv = fe_inv pt.z in
      let zinv2 = fe_sqr zinv in
      let x = fe_mul pt.x zinv2 in
      let y = fe_mul pt.y (fe_mul zinv2 zinv) in
      Some (x, y)
    end

  let negate pt =
    if is_infinity pt then pt
    else { pt with y = Uint256.sub_mod Uint256.zero pt.y p }

  let double pt =
    if is_infinity pt || Uint256.is_zero pt.y then infinity
    else begin
      let a = fe_sqr pt.x in
      let b = fe_sqr pt.y in
      let c = fe_sqr b in
      let d =
        let t = fe_sqr (fe_add pt.x b) in
        fe_dbl (fe_sub (fe_sub t a) c)
      in
      let e = fe_add (fe_dbl a) a in
      let f = fe_sqr e in
      let x3 = fe_sub f (fe_dbl d) in
      let y3 =
        let c8 = fe_dbl (fe_dbl (fe_dbl c)) in
        fe_sub (fe_mul e (fe_sub d x3)) c8
      in
      let z3 = fe_dbl (fe_mul pt.y pt.z) in
      { x = x3; y = y3; z = z3 }
    end

  let add p1 p2 =
    if is_infinity p1 then p2
    else if is_infinity p2 then p1
    else begin
      let z1z1 = fe_sqr p1.z and z2z2 = fe_sqr p2.z in
      let u1 = fe_mul p1.x z2z2 and u2 = fe_mul p2.x z1z1 in
      let s1 = fe_mul p1.y (fe_mul z2z2 p2.z) in
      let s2 = fe_mul p2.y (fe_mul z1z1 p1.z) in
      let h = fe_sub u2 u1 and r = fe_sub s2 s1 in
      if Uint256.is_zero h then
        if Uint256.is_zero r then double p1 else infinity
      else begin
        let h2 = fe_sqr h in
        let h3 = fe_mul h h2 in
        let u1h2 = fe_mul u1 h2 in
        let x3 = fe_sub (fe_sub (fe_sqr r) h3) (fe_dbl u1h2) in
        let y3 = fe_sub (fe_mul r (fe_sub u1h2 x3)) (fe_mul s1 h3) in
        let z3 = fe_mul h (fe_mul p1.z p2.z) in
        { x = x3; y = y3; z = z3 }
      end
    end

  let scalar_mul k pt =
    let nb = Uint256.num_bits k in
    let acc = ref infinity in
    for i = nb - 1 downto 0 do
      acc := double !acc;
      if Uint256.bit k i then acc := add !acc pt
    done;
    !acc

  let double_scalar_mul a pa b pb =
    let sum = add pa pb in
    let nb = max (Uint256.num_bits a) (Uint256.num_bits b) in
    let acc = ref infinity in
    for i = nb - 1 downto 0 do
      acc := double !acc;
      (match (Uint256.bit a i, Uint256.bit b i) with
      | true, true -> acc := add !acc sum
      | true, false -> acc := add !acc pa
      | false, true -> acc := add !acc pb
      | false, false -> ())
    done;
    !acc

  let equal p1 p2 =
    match (to_affine p1, to_affine p2) with
    | None, None -> true
    | Some (x1, y1), Some (x2, y2) -> Uint256.equal x1 x2 && Uint256.equal y1 y2
    | None, Some _ | Some _, None -> false
end

(* ======================================================================
   Fast field kernel: ten little-endian limbs of 26 bits.

   Limb products are ≤ 52 bits and a comba column sums at most ten of
   them plus a sub-2^31 carry, staying below 2^56 — far inside the
   63-bit native int.  The pseudo-Mersenne structure folds in one shot:
   2^260 ≡ 2^36 + 15632 (mod p), so a high limb h at weight 2^(260+26j)
   contributes h·15632 at limb j and h·2^10 at limb j+1.  Every exported
   operation returns a canonical value (< p, limbs < 2^26); arrays are
   never mutated after creation, so values can be shared freely across
   domains.
   ====================================================================== *)

module Fe = struct
  type t = int array

  let nl = 10
  let mask = 0x3FFFFFF (* 2^26 - 1 *)

  (* little-endian 26-bit limbs of p = 2^256 - 2^32 - 977 *)
  let p_limbs =
    [|
      0x3fffc2f; 0x3ffffbf; 0x3ffffff; 0x3ffffff; 0x3ffffff; 0x3ffffff;
      0x3ffffff; 0x3ffffff; 0x3ffffff; 0x03fffff;
    |]

  let zero () = Array.make nl 0

  let one () =
    let a = Array.make nl 0 in
    a.(0) <- 1;
    a

  let is_zero a =
    let rec go i = i >= nl || (Array.unsafe_get a i = 0 && go (i + 1)) in
    go 0

  let is_one a =
    a.(0) = 1
    &&
    let rec go i = i >= nl || (a.(i) = 0 && go (i + 1)) in
    go 1

  let equal a b =
    let rec go i =
      i >= nl || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1))
    in
    go 0

  let ge_p a =
    let rec go i =
      if i < 0 then true
      else if a.(i) <> p_limbs.(i) then a.(i) > p_limbs.(i)
      else go (i - 1)
    in
    go (nl - 1)

  let sub_p_inplace a =
    let borrow = ref 0 in
    for i = 0 to nl - 1 do
      let s = a.(i) - p_limbs.(i) - !borrow in
      if s < 0 then begin
        a.(i) <- s + mask + 1;
        borrow := 1
      end
      else begin
        a.(i) <- s;
        borrow := 0
      end
    done

  (* Conversions to/from the 16-bit-limb Uint256 representation.  Only
     used at kernel boundaries (scalars, encodings, the public fe API);
     the hot paths stay in 26-bit limbs throughout. *)
  let of_u256 x =
    let l = Uint256.limbs x in
    let r = Array.make nl 0 in
    for j = 0 to nl - 1 do
      let b = 26 * j in
      let i = b lsr 4 and sh = b land 15 in
      let v = ref (l.(i) lsr sh) in
      if i + 1 < 16 then v := !v lor (l.(i + 1) lsl (16 - sh));
      if i + 2 < 16 && sh > 6 then v := !v lor (l.(i + 2) lsl (32 - sh));
      r.(j) <- !v land mask
    done;
    r

  let to_u256 a =
    let l = Array.make 16 0 in
    for j = 0 to nl - 1 do
      let b = 26 * j in
      let i = b lsr 4 and sh = b land 15 in
      let v = a.(j) lsl sh in
      l.(i) <- (l.(i) lor v) land 0xFFFF;
      if i + 1 < 16 then l.(i + 1) <- (l.(i + 1) lor (v lsr 16)) land 0xFFFF;
      if i + 2 < 16 then l.(i + 2) <- (l.(i + 2) lor (v lsr 32)) land 0xFFFF
    done;
    Uint256.of_limbs l

  (* Fold the bits at and above 2^256 back down (2^256 ≡ 2^32 + 977),
     then subtract p at most once.  Callers guarantee the value is below
     2^260, i.e. fits ten limbs with limb 9 possibly above 2^22. *)
  let normalize r =
    while r.(nl - 1) >= 1 lsl 22 do
      let o = r.(nl - 1) lsr 22 in
      r.(nl - 1) <- r.(nl - 1) land 0x3FFFFF;
      r.(0) <- r.(0) + (o * 977);
      r.(1) <- r.(1) + (o lsl 6);
      let c = ref 0 in
      for j = 0 to nl - 1 do
        let s = r.(j) + !c in
        r.(j) <- s land mask;
        c := s lsr 26
      done
      (* the final carry is impossible: the folded value is < 2^260 and
         shrinks by o·p > 0 on every pass *)
    done;
    if ge_p r then sub_p_inplace r;
    r

  (* Fully-unrolled comba multiplication with fused reduction: the ten
     26-bit limbs are lifted into local variables, the nineteen product
     columns are accumulated with a running carry (each column sums at
     most ten 52-bit products plus a sub-2^31 carry, staying below 2^56),
     and the high half is folded straight down without materializing the
     20-limb intermediate.  Generated mechanically; checked against
     [Ref.fe_mul] by the differential suites. *)
  let mul a b =
    let a0 = Array.unsafe_get a 0 in
    let a1 = Array.unsafe_get a 1 in
    let a2 = Array.unsafe_get a 2 in
    let a3 = Array.unsafe_get a 3 in
    let a4 = Array.unsafe_get a 4 in
    let a5 = Array.unsafe_get a 5 in
    let a6 = Array.unsafe_get a 6 in
    let a7 = Array.unsafe_get a 7 in
    let a8 = Array.unsafe_get a 8 in
    let a9 = Array.unsafe_get a 9 in
    let b0 = Array.unsafe_get b 0 in
    let b1 = Array.unsafe_get b 1 in
    let b2 = Array.unsafe_get b 2 in
    let b3 = Array.unsafe_get b 3 in
    let b4 = Array.unsafe_get b 4 in
    let b5 = Array.unsafe_get b 5 in
    let b6 = Array.unsafe_get b 6 in
    let b7 = Array.unsafe_get b 7 in
    let b8 = Array.unsafe_get b 8 in
    let b9 = Array.unsafe_get b 9 in
    let c = 0 in
    let s = c + (a0 * b0) in
    let t0 = s land mask in
    let c = s lsr 26 in
    let s = c + (a0 * b1) + (a1 * b0) in
    let t1 = s land mask in
    let c = s lsr 26 in
    let s = c + (a0 * b2) + (a1 * b1) + (a2 * b0) in
    let t2 = s land mask in
    let c = s lsr 26 in
    let s = c + (a0 * b3) + (a1 * b2) + (a2 * b1) + (a3 * b0) in
    let t3 = s land mask in
    let c = s lsr 26 in
    let s = c + (a0 * b4) + (a1 * b3) + (a2 * b2) + (a3 * b1) + (a4 * b0) in
    let t4 = s land mask in
    let c = s lsr 26 in
    let s = c + (a0 * b5) + (a1 * b4) + (a2 * b3) + (a3 * b2) + (a4 * b1) + (a5 * b0) in
    let t5 = s land mask in
    let c = s lsr 26 in
    let s = c + (a0 * b6) + (a1 * b5) + (a2 * b4) + (a3 * b3) + (a4 * b2) + (a5 * b1) + (a6 * b0) in
    let t6 = s land mask in
    let c = s lsr 26 in
    let s = c + (a0 * b7) + (a1 * b6) + (a2 * b5) + (a3 * b4) + (a4 * b3) + (a5 * b2) + (a6 * b1) + (a7 * b0) in
    let t7 = s land mask in
    let c = s lsr 26 in
    let s = c + (a0 * b8) + (a1 * b7) + (a2 * b6) + (a3 * b5) + (a4 * b4) + (a5 * b3) + (a6 * b2) + (a7 * b1) + (a8 * b0) in
    let t8 = s land mask in
    let c = s lsr 26 in
    let s = c + (a0 * b9) + (a1 * b8) + (a2 * b7) + (a3 * b6) + (a4 * b5) + (a5 * b4) + (a6 * b3) + (a7 * b2) + (a8 * b1) + (a9 * b0) in
    let t9 = s land mask in
    let c = s lsr 26 in
    let s = c + (a1 * b9) + (a2 * b8) + (a3 * b7) + (a4 * b6) + (a5 * b5) + (a6 * b4) + (a7 * b3) + (a8 * b2) + (a9 * b1) in
    let t10 = s land mask in
    let c = s lsr 26 in
    let s = c + (a2 * b9) + (a3 * b8) + (a4 * b7) + (a5 * b6) + (a6 * b5) + (a7 * b4) + (a8 * b3) + (a9 * b2) in
    let t11 = s land mask in
    let c = s lsr 26 in
    let s = c + (a3 * b9) + (a4 * b8) + (a5 * b7) + (a6 * b6) + (a7 * b5) + (a8 * b4) + (a9 * b3) in
    let t12 = s land mask in
    let c = s lsr 26 in
    let s = c + (a4 * b9) + (a5 * b8) + (a6 * b7) + (a7 * b6) + (a8 * b5) + (a9 * b4) in
    let t13 = s land mask in
    let c = s lsr 26 in
    let s = c + (a5 * b9) + (a6 * b8) + (a7 * b7) + (a8 * b6) + (a9 * b5) in
    let t14 = s land mask in
    let c = s lsr 26 in
    let s = c + (a6 * b9) + (a7 * b8) + (a8 * b7) + (a9 * b6) in
    let t15 = s land mask in
    let c = s lsr 26 in
    let s = c + (a7 * b9) + (a8 * b8) + (a9 * b7) in
    let t16 = s land mask in
    let c = s lsr 26 in
    let s = c + (a8 * b9) + (a9 * b8) in
    let t17 = s land mask in
    let c = s lsr 26 in
    let s = c + (a9 * b9) in
    let t18 = s land mask in
    let c = s lsr 26 in
    let t19 = c in
    (* fold limbs 10..19 down: 2^260 == 2^36 + 15632 (mod p) *)
    let c = 0 in
    let s = c + t0 + (t10 * 15632) in
    let r0 = s land mask in
    let c = s lsr 26 in
    let s = c + t1 + (t11 * 15632) + (t10 lsl 10) in
    let r1 = s land mask in
    let c = s lsr 26 in
    let s = c + t2 + (t12 * 15632) + (t11 lsl 10) in
    let r2 = s land mask in
    let c = s lsr 26 in
    let s = c + t3 + (t13 * 15632) + (t12 lsl 10) in
    let r3 = s land mask in
    let c = s lsr 26 in
    let s = c + t4 + (t14 * 15632) + (t13 lsl 10) in
    let r4 = s land mask in
    let c = s lsr 26 in
    let s = c + t5 + (t15 * 15632) + (t14 lsl 10) in
    let r5 = s land mask in
    let c = s lsr 26 in
    let s = c + t6 + (t16 * 15632) + (t15 lsl 10) in
    let r6 = s land mask in
    let c = s lsr 26 in
    let s = c + t7 + (t17 * 15632) + (t16 lsl 10) in
    let r7 = s land mask in
    let c = s lsr 26 in
    let s = c + t8 + (t18 * 15632) + (t17 lsl 10) in
    let r8 = s land mask in
    let c = s lsr 26 in
    let s = c + t9 + (t19 * 15632) + (t18 lsl 10) in
    let r9 = s land mask in
    let c = s lsr 26 in
    let h = (t19 lsl 10) + c in
    (* second fold: h at weight 2^260 is < 2^38 *)
    let s = r0 + (h * 15632) in
    let r0 = s land mask in
    let s = (s lsr 26) + r1 + (h lsl 10) in
    let r1 = s land mask in
    let c = s lsr 26 in
    let s = c + r2 in
    let r2 = s land mask in
    let c = s lsr 26 in
    let s = c + r3 in
    let r3 = s land mask in
    let c = s lsr 26 in
    let s = c + r4 in
    let r4 = s land mask in
    let c = s lsr 26 in
    let s = c + r5 in
    let r5 = s land mask in
    let c = s lsr 26 in
    let s = c + r6 in
    let r6 = s land mask in
    let c = s lsr 26 in
    let s = c + r7 in
    let r7 = s land mask in
    let c = s lsr 26 in
    let s = c + r8 in
    let r8 = s land mask in
    let c = s lsr 26 in
    let s = c + r9 in
    let r9 = s land mask in
    let c = s lsr 26 in
    (* any carry past limb 9 re-enters at 2^260; normalize eats it *)
    let r = Array.make nl 0 in
    Array.unsafe_set r 0 r0;
    Array.unsafe_set r 1 r1;
    Array.unsafe_set r 2 r2;
    Array.unsafe_set r 3 r3;
    Array.unsafe_set r 4 r4;
    Array.unsafe_set r 5 r5;
    Array.unsafe_set r 6 r6;
    Array.unsafe_set r 7 r7;
    Array.unsafe_set r 8 r8;
    Array.unsafe_set r 9 (r9 lor (c lsl 26));
    normalize r

  let sqr a =
    let a0 = Array.unsafe_get a 0 in
    let a1 = Array.unsafe_get a 1 in
    let a2 = Array.unsafe_get a 2 in
    let a3 = Array.unsafe_get a 3 in
    let a4 = Array.unsafe_get a 4 in
    let a5 = Array.unsafe_get a 5 in
    let a6 = Array.unsafe_get a 6 in
    let a7 = Array.unsafe_get a 7 in
    let a8 = Array.unsafe_get a 8 in
    let a9 = Array.unsafe_get a 9 in
    let c = 0 in
    let s = c + (a0 * a0) in
    let t0 = s land mask in
    let c = s lsr 26 in
    let s = c + (2 * ((a0 * a1))) in
    let t1 = s land mask in
    let c = s lsr 26 in
    let s = c + (2 * ((a0 * a2))) + (a1 * a1) in
    let t2 = s land mask in
    let c = s lsr 26 in
    let s = c + (2 * ((a0 * a3) + (a1 * a2))) in
    let t3 = s land mask in
    let c = s lsr 26 in
    let s = c + (2 * ((a0 * a4) + (a1 * a3))) + (a2 * a2) in
    let t4 = s land mask in
    let c = s lsr 26 in
    let s = c + (2 * ((a0 * a5) + (a1 * a4) + (a2 * a3))) in
    let t5 = s land mask in
    let c = s lsr 26 in
    let s = c + (2 * ((a0 * a6) + (a1 * a5) + (a2 * a4))) + (a3 * a3) in
    let t6 = s land mask in
    let c = s lsr 26 in
    let s = c + (2 * ((a0 * a7) + (a1 * a6) + (a2 * a5) + (a3 * a4))) in
    let t7 = s land mask in
    let c = s lsr 26 in
    let s = c + (2 * ((a0 * a8) + (a1 * a7) + (a2 * a6) + (a3 * a5))) + (a4 * a4) in
    let t8 = s land mask in
    let c = s lsr 26 in
    let s = c + (2 * ((a0 * a9) + (a1 * a8) + (a2 * a7) + (a3 * a6) + (a4 * a5))) in
    let t9 = s land mask in
    let c = s lsr 26 in
    let s = c + (2 * ((a1 * a9) + (a2 * a8) + (a3 * a7) + (a4 * a6))) + (a5 * a5) in
    let t10 = s land mask in
    let c = s lsr 26 in
    let s = c + (2 * ((a2 * a9) + (a3 * a8) + (a4 * a7) + (a5 * a6))) in
    let t11 = s land mask in
    let c = s lsr 26 in
    let s = c + (2 * ((a3 * a9) + (a4 * a8) + (a5 * a7))) + (a6 * a6) in
    let t12 = s land mask in
    let c = s lsr 26 in
    let s = c + (2 * ((a4 * a9) + (a5 * a8) + (a6 * a7))) in
    let t13 = s land mask in
    let c = s lsr 26 in
    let s = c + (2 * ((a5 * a9) + (a6 * a8))) + (a7 * a7) in
    let t14 = s land mask in
    let c = s lsr 26 in
    let s = c + (2 * ((a6 * a9) + (a7 * a8))) in
    let t15 = s land mask in
    let c = s lsr 26 in
    let s = c + (2 * ((a7 * a9))) + (a8 * a8) in
    let t16 = s land mask in
    let c = s lsr 26 in
    let s = c + (2 * ((a8 * a9))) in
    let t17 = s land mask in
    let c = s lsr 26 in
    let s = c + (a9 * a9) in
    let t18 = s land mask in
    let c = s lsr 26 in
    let t19 = c in
    (* fold limbs 10..19 down: 2^260 == 2^36 + 15632 (mod p) *)
    let c = 0 in
    let s = c + t0 + (t10 * 15632) in
    let r0 = s land mask in
    let c = s lsr 26 in
    let s = c + t1 + (t11 * 15632) + (t10 lsl 10) in
    let r1 = s land mask in
    let c = s lsr 26 in
    let s = c + t2 + (t12 * 15632) + (t11 lsl 10) in
    let r2 = s land mask in
    let c = s lsr 26 in
    let s = c + t3 + (t13 * 15632) + (t12 lsl 10) in
    let r3 = s land mask in
    let c = s lsr 26 in
    let s = c + t4 + (t14 * 15632) + (t13 lsl 10) in
    let r4 = s land mask in
    let c = s lsr 26 in
    let s = c + t5 + (t15 * 15632) + (t14 lsl 10) in
    let r5 = s land mask in
    let c = s lsr 26 in
    let s = c + t6 + (t16 * 15632) + (t15 lsl 10) in
    let r6 = s land mask in
    let c = s lsr 26 in
    let s = c + t7 + (t17 * 15632) + (t16 lsl 10) in
    let r7 = s land mask in
    let c = s lsr 26 in
    let s = c + t8 + (t18 * 15632) + (t17 lsl 10) in
    let r8 = s land mask in
    let c = s lsr 26 in
    let s = c + t9 + (t19 * 15632) + (t18 lsl 10) in
    let r9 = s land mask in
    let c = s lsr 26 in
    let h = (t19 lsl 10) + c in
    (* second fold: h at weight 2^260 is < 2^38 *)
    let s = r0 + (h * 15632) in
    let r0 = s land mask in
    let s = (s lsr 26) + r1 + (h lsl 10) in
    let r1 = s land mask in
    let c = s lsr 26 in
    let s = c + r2 in
    let r2 = s land mask in
    let c = s lsr 26 in
    let s = c + r3 in
    let r3 = s land mask in
    let c = s lsr 26 in
    let s = c + r4 in
    let r4 = s land mask in
    let c = s lsr 26 in
    let s = c + r5 in
    let r5 = s land mask in
    let c = s lsr 26 in
    let s = c + r6 in
    let r6 = s land mask in
    let c = s lsr 26 in
    let s = c + r7 in
    let r7 = s land mask in
    let c = s lsr 26 in
    let s = c + r8 in
    let r8 = s land mask in
    let c = s lsr 26 in
    let s = c + r9 in
    let r9 = s land mask in
    let c = s lsr 26 in
    (* any carry past limb 9 re-enters at 2^260; normalize eats it *)
    let r = Array.make nl 0 in
    Array.unsafe_set r 0 r0;
    Array.unsafe_set r 1 r1;
    Array.unsafe_set r 2 r2;
    Array.unsafe_set r 3 r3;
    Array.unsafe_set r 4 r4;
    Array.unsafe_set r 5 r5;
    Array.unsafe_set r 6 r6;
    Array.unsafe_set r 7 r7;
    Array.unsafe_set r 8 r8;
    Array.unsafe_set r 9 (r9 lor (c lsl 26));
    normalize r

  let add a b =
    let r = Array.make nl 0 in
    let c = ref 0 in
    for j = 0 to nl - 1 do
      let s = Array.unsafe_get a j + Array.unsafe_get b j + !c in
      Array.unsafe_set r j (s land mask);
      c := s lsr 26
    done;
    (* canonical inputs sum below 2^257: no carry escapes limb 9 *)
    normalize r

  (* --- lazy (non-canonical) arithmetic for the point formulas ---------

     A value of magnitude m has limbs < m·2^26 (limb 9 < m·2^22) and is
     congruent to the represented element without being reduced.  The
     caller tracks magnitudes: canonical values (every [mul]/[sqr]
     output) have m = 1, [add_nc] sums magnitudes, [neg_nc m a] of a
     magnitude-m value yields magnitude 2m.  Values may flow into
     [mul]/[sqr] only while m <= 8 (keeps comba columns below 2^62) and
     must pass through [normalize_nc] before being stored in a point or
     zero-tested.  This is what lets the Jacobian ladders skip ~10 full
     normalizations per group operation. *)

  let add_nc a b =
    let r = Array.make nl 0 in
    for j = 0 to nl - 1 do
      Array.unsafe_set r j (Array.unsafe_get a j + Array.unsafe_get b j)
    done;
    r

  (* a - b in one pass, where b has magnitude <= m; result mag(a)+2m *)
  let sub_nc m a b =
    let r = Array.make nl 0 in
    let m2 = 2 * m in
    for j = 0 to nl - 1 do
      Array.unsafe_set r j
        (Array.unsafe_get a j
        + (m2 * Array.unsafe_get p_limbs j)
        - Array.unsafe_get b j)
    done;
    r

  (* k·a for a small constant k; result mag k·mag(a) *)
  let mul_int_nc k a =
    let r = Array.make nl 0 in
    for j = 0 to nl - 1 do
      Array.unsafe_set r j (k * Array.unsafe_get a j)
    done;
    r

  (* Carry-propagate a freshly built non-canonical value (mutated in
     place), then reduce to canonical form.  The carry past limb 9
     re-enters at 2^260 exactly as in [mul]'s tail. *)
  let normalize_nc r =
    let c = ref 0 in
    for j = 0 to nl - 1 do
      let s = Array.unsafe_get r j + !c in
      Array.unsafe_set r j (s land mask);
      c := s lsr 26
    done;
    Array.unsafe_set r 9 (Array.unsafe_get r 9 lor (!c lsl 26));
    normalize r

  let sub a b =
    let r = Array.make nl 0 in
    let borrow = ref 0 in
    for j = 0 to nl - 1 do
      let s = Array.unsafe_get a j - Array.unsafe_get b j - !borrow in
      if s < 0 then begin
        Array.unsafe_set r j (s + mask + 1);
        borrow := 1
      end
      else begin
        Array.unsafe_set r j s;
        borrow := 0
      end
    done;
    if !borrow <> 0 then begin
      (* a < b: add p back (a - b + p < p, so no carry out of limb 9) *)
      let c = ref 0 in
      for j = 0 to nl - 1 do
        let s = r.(j) + p_limbs.(j) + !c in
        r.(j) <- s land mask;
        c := s lsr 26
      done
    end;
    r

  let neg a = if is_zero a then zero () else sub (zero ()) a

  let inv a =
    if is_zero a then invalid_arg "Secp256k1.fe_inv: zero";
    of_u256 (Uint256.inv_mod (to_u256 a) p)

  (* Montgomery's trick: invert the whole array with a single modular
     inversion and 3(k-1) multiplications. *)
  let inv_batch xs =
    let k = Array.length xs in
    if k = 0 then [||]
    else begin
      let prefix = Array.make k [||] in
      let acc = ref (one ()) in
      for i = 0 to k - 1 do
        prefix.(i) <- !acc;
        acc := mul !acc xs.(i)
      done;
      let out = Array.make k [||] in
      let suffix = ref (inv !acc) in
      for i = k - 1 downto 0 do
        out.(i) <- mul !suffix prefix.(i);
        suffix := mul !suffix xs.(i)
      done;
      out
    end
end

(* --- scalar arithmetic modulo the group order n ------------------------- *)

module Scalar = struct
  let n = n

  (* 2^256 - n: 129 bits, nine 16-bit limbs *)
  let t_n = Uint256.limbs (fst (Uint256.sub Uint256.zero n))
  let t_n_len = 9

  let reduce x = if Uint256.compare x n >= 0 then fst (Uint256.sub x n) else x

  (* Fold-based reduction of a wide (≤ 32-limb) value: repeatedly rewrite
     hi·2^256 + lo as lo + hi·(2^256 - n) until the value fits 16 limbs,
     then subtract n at most once (2^256 < 2n). *)
  let reduce_wide w =
    let significant a =
      let rec go i =
        if i < 0 then 0 else if a.(i) <> 0 then i + 1 else go (i - 1)
      in
      go (Array.length a - 1)
    in
    let current = ref w in
    let len = ref (significant w) in
    while !len > 16 do
      let a = !current in
      let hi_len = !len - 16 in
      let acc = Array.make (max 16 (hi_len + t_n_len) + 1) 0 in
      Array.blit a 0 acc 0 16;
      for i = 0 to hi_len - 1 do
        let h = a.(16 + i) in
        if h <> 0 then begin
          let carry = ref 0 in
          for j = 0 to t_n_len - 1 do
            let s = acc.(i + j) + (h * t_n.(j)) + !carry in
            acc.(i + j) <- s land 0xFFFF;
            carry := s lsr 16
          done;
          let k = ref (i + t_n_len) in
          while !carry <> 0 do
            let s = acc.(!k) + !carry in
            acc.(!k) <- s land 0xFFFF;
            carry := s lsr 16;
            incr k
          done
        end
      done;
      current := acc;
      len := significant acc
    done;
    let r = Array.make 16 0 in
    Array.blit !current 0 r 0 (min 16 (Array.length !current));
    reduce (Uint256.of_limbs r)

  let mul a b = reduce_wide (Uint256.mul_wide a b)
  let add a b = Uint256.add_mod a b n
  let sub a b = Uint256.sub_mod a b n
  let inv x = Uint256.inv_mod x n

  (* --- GLV scalar decomposition ---------------------------------------
     k = k1 + k2*lambda (mod n) with |k1|, |k2| <= 2^128: the standard
     lattice basis for secp256k1 with c_i = round(k*g_i / 2^384), where
     g1 = round(2^384*b2/n) and g2 = round(2^384*(-b1)/n). *)

  let g1 =
    Uint256.of_hex
      "3086d221a7d46bcde86c90e49284eb153daa8a1471e8ca7fe893209a45dbb031"

  let g2 =
    Uint256.of_hex
      "e4437ed6010e88286f547fa90abfe4c4221208ac9df506c61571b4ae8ac47f71"

  let minus_b1 = Uint256.of_hex "e4437ed6010e88286f547fa90abfe4c3"

  let minus_b2 =
    Uint256.of_hex
      "fffffffffffffffffffffffffffffffe8a280ac50774346dd765cda83db1562c"

  let half_n =
    Uint256.of_hex
      "7fffffffffffffffffffffffffffffff5d576e7357a4501ddfe92f46681b20a0"

  (* round(a*b / 2^384): limbs 24..31 of the wide product, plus the
     rounding bit at position 383 *)
  let mul_shift_384 a b =
    let w = Uint256.mul_wide a b in
    let r = Array.make 16 0 in
    Array.blit w 24 r 0 8;
    let v = Uint256.of_limbs r in
    if w.(23) land 0x8000 <> 0 then fst (Uint256.add v Uint256.one) else v

  (* [split k] (k < n) returns ((neg1, k1), (neg2, k2)) with
     k = (-1)^neg1 * k1 + (-1)^neg2 * k2 * lambda (mod n) and both
     magnitudes at most 2^128. *)
  let split k =
    let c1 = mul_shift_384 k g1 in
    let c2 = mul_shift_384 k g2 in
    let k2 = add (mul c1 minus_b1) (mul c2 minus_b2) in
    let k1 = sub k (mul k2 lambda) in
    let norm v =
      if Uint256.compare v half_n > 0 then (true, fst (Uint256.sub n v))
      else (false, v)
    in
    (norm k1, norm k2)
end

(* --- Jacobian points on the fast field --------------------------------- *)

type point = { x : Fe.t; y : Fe.t; z : Fe.t }

let infinity = { x = Fe.one (); y = Fe.one (); z = Fe.zero () }
let is_infinity pt = Fe.is_zero pt.z
let of_affine x y = { x = Fe.of_u256 x; y = Fe.of_u256 y; z = Fe.one () }
let generator = of_affine gx gy
let gx_fe = Fe.of_u256 gx
let gy_fe = Fe.of_u256 gy

let seven =
  let a = Fe.zero () in
  a.(0) <- 7;
  a

let is_on_curve x y =
  if Uint256.compare x p >= 0 || Uint256.compare y p >= 0 then false
  else begin
    let xf = Fe.of_u256 x and yf = Fe.of_u256 y in
    let lhs = Fe.sqr yf in
    let rhs = Fe.add (Fe.mul (Fe.sqr xf) xf) seven in
    Fe.equal lhs rhs
  end

let to_affine pt =
  if is_infinity pt then None
  else begin
    let zinv = Fe.inv pt.z in
    let zinv2 = Fe.sqr zinv in
    let x = Fe.mul pt.x zinv2 in
    let y = Fe.mul pt.y (Fe.mul zinv2 zinv) in
    Some (Fe.to_u256 x, Fe.to_u256 y)
  end

let negate pt = if is_infinity pt then pt else { pt with y = Fe.neg pt.y }

(* dbl-2009-l, a = 0: 2M + 5S.  Formula-internal sums use the lazy
   magnitude-tracked ops (magnitudes in comments); stored coordinates
   are always canonical. *)
let double pt =
  if is_infinity pt || Fe.is_zero pt.y then infinity
  else begin
    let a = Fe.sqr pt.x in
    let b = Fe.sqr pt.y in
    let c = Fe.sqr b in
    let d =
      let t = Fe.sqr (Fe.add_nc pt.x b) (* arg mag 2 *) in
      (* 2(t - a - c): 1 + 2 + 2 doubled = mag 10, then canonical *)
      Fe.normalize_nc (Fe.mul_int_nc 2 (Fe.sub_nc 1 (Fe.sub_nc 1 t a) c))
    in
    let e = Fe.mul_int_nc 3 a (* mag 3 *) in
    let f = Fe.sqr e in
    let x3 = Fe.normalize_nc (Fe.sub_nc 2 f (Fe.mul_int_nc 2 d)) in
    let y3 =
      let dx = Fe.sub_nc 1 d x3 (* mag 3 *) in
      let c8 = Fe.mul_int_nc 8 c (* mag 8 *) in
      Fe.normalize_nc (Fe.sub_nc 8 (Fe.mul e dx) c8)
    in
    let z3 = Fe.normalize_nc (Fe.mul_int_nc 2 (Fe.mul pt.y pt.z)) in
    { x = x3; y = y3; z = z3 }
  end

(* general Jacobian addition: 11M + 5S *)
let add p1 p2 =
  if is_infinity p1 then p2
  else if is_infinity p2 then p1
  else begin
    let z1z1 = Fe.sqr p1.z and z2z2 = Fe.sqr p2.z in
    let u1 = Fe.mul p1.x z2z2 and u2 = Fe.mul p2.x z1z1 in
    let s1 = Fe.mul p1.y (Fe.mul z2z2 p2.z) in
    let s2 = Fe.mul p2.y (Fe.mul z1z1 p1.z) in
    let h = Fe.normalize_nc (Fe.sub_nc 1 u2 u1) in
    let r = Fe.normalize_nc (Fe.sub_nc 1 s2 s1) in
    if Fe.is_zero h then if Fe.is_zero r then double p1 else infinity
    else begin
      let h2 = Fe.sqr h in
      let h3 = Fe.mul h h2 in
      let u1h2 = Fe.mul u1 h2 in
      let x3 =
        (* r² - h3 - 2·u1h2: mag 1 + 2 + 4 *)
        Fe.normalize_nc
          (Fe.sub_nc 2 (Fe.sub_nc 1 (Fe.sqr r) h3) (Fe.mul_int_nc 2 u1h2))
      in
      let y3 =
        Fe.normalize_nc
          (Fe.sub_nc 1
             (Fe.mul r (Fe.sub_nc 1 u1h2 x3) (* arg mag 3 *))
             (Fe.mul s1 h3))
      in
      let z3 = Fe.mul h (Fe.mul p1.z p2.z) in
      { x = x3; y = y3; z = z3 }
    end
  end

(* mixed addition with an affine (z = 1) second operand: 7M + 4S *)
let madd p1 x2 y2 =
  if is_infinity p1 then { x = x2; y = y2; z = Fe.one () }
  else begin
    let z1z1 = Fe.sqr p1.z in
    let u2 = Fe.mul x2 z1z1 in
    let s2 = Fe.mul y2 (Fe.mul z1z1 p1.z) in
    let h = Fe.normalize_nc (Fe.sub_nc 1 u2 p1.x) in
    let r = Fe.normalize_nc (Fe.sub_nc 1 s2 p1.y) in
    if Fe.is_zero h then if Fe.is_zero r then double p1 else infinity
    else begin
      let h2 = Fe.sqr h in
      let h3 = Fe.mul h h2 in
      let u1h2 = Fe.mul p1.x h2 in
      let x3 =
        Fe.normalize_nc
          (Fe.sub_nc 2 (Fe.sub_nc 1 (Fe.sqr r) h3) (Fe.mul_int_nc 2 u1h2))
      in
      let y3 =
        Fe.normalize_nc
          (Fe.sub_nc 1 (Fe.mul r (Fe.sub_nc 1 u1h2 x3)) (Fe.mul p1.y h3))
      in
      let z3 = Fe.mul p1.z h in
      { x = x3; y = y3; z = z3 }
    end
  end

(* projective cross-comparison: x1·z2² = x2·z1² ∧ y1·z2³ = y2·z1³ *)
let equal p1 p2 =
  match (is_infinity p1, is_infinity p2) with
  | true, true -> true
  | true, false | false, true -> false
  | false, false ->
      let z1z1 = Fe.sqr p1.z and z2z2 = Fe.sqr p2.z in
      Fe.equal (Fe.mul p1.x z2z2) (Fe.mul p2.x z1z1)
      && Fe.equal
           (Fe.mul p1.y (Fe.mul z2z2 p2.z))
           (Fe.mul p2.y (Fe.mul z1z1 p1.z))

(* --- wNAF scalar recoding ---------------------------------------------- *)

(* Width-w non-adjacent form: odd digits in (-2^(w-1), 2^(w-1)), at most
   one nonzero digit in any w consecutive positions.  Works on a mutable
   17×16-bit limb copy (one spare limb: adding back a negative digit can
   carry past 2^256). *)
let wnaf k w =
  let d = Array.make 17 0 in
  Array.blit (Uint256.limbs k) 0 d 0 16;
  let digits = Array.make 258 0 in
  let two_w = 1 lsl w in
  let half = 1 lsl (w - 1) in
  let hi = ref 16 in
  let norm () = while !hi >= 0 && d.(!hi) = 0 do decr hi done in
  norm ();
  let i = ref 0 in
  while !hi >= 0 do
    (if d.(0) land 1 = 1 then begin
       let u = d.(0) land (two_w - 1) in
       let u = if u >= half then u - two_w else u in
       digits.(!i) <- u;
       if u > 0 then begin
         let borrow = ref u and j = ref 0 in
         while !borrow <> 0 do
           let s = d.(!j) - !borrow in
           if s < 0 then begin
             d.(!j) <- s + 0x10000;
             borrow := 1
           end
           else begin
             d.(!j) <- s;
             borrow := 0
           end;
           incr j
         done
       end
       else begin
         let carry = ref (-u) and j = ref 0 in
         while !carry <> 0 do
           let s = d.(!j) + !carry in
           d.(!j) <- s land 0xFFFF;
           carry := s lsr 16;
           incr j
         done;
         (* the add-back can extend the value upward; limbs above the
            old hi were zero, so scanning forward is enough *)
         while !hi < 16 && d.(!hi + 1) <> 0 do
           incr hi
         done
       end
     end);
    (* d >>= 1 *)
    for j = 0 to !hi - 1 do
      d.(j) <- (d.(j) lsr 1) lor ((d.(j + 1) land 1) lsl 15)
    done;
    if !hi >= 0 then d.(!hi) <- d.(!hi) lsr 1;
    norm ();
    incr i
  done;
  (digits, !i)

(* --- precomputed tables ------------------------------------------------- *)

(* Batch-normalize an array of non-infinity Jacobian points to affine
   (x, y) limb pairs using one shared inversion. *)
let to_affine_batch pts =
  let zs = Array.map (fun pt -> pt.z) pts in
  let zinvs = Fe.inv_batch zs in
  Array.mapi
    (fun i pt ->
      let zi2 = Fe.sqr zinvs.(i) in
      (Fe.mul pt.x zi2, Fe.mul pt.y (Fe.mul zi2 zinvs.(i))))
    pts

(* Odd multiples P, 3P, ..., (2^(w-1)-1)P, normalized to affine. *)
let odd_multiples pt count =
  let p2 = double pt in
  let jac = Array.make count pt in
  for i = 1 to count - 1 do
    jac.(i) <- add jac.(i - 1) p2
  done;
  to_affine_batch jac

(* Map a table through the endomorphism (x, y) -> (beta*x, y); the
   resulting entries are the same odd multiples of lambda*P. *)
let beta_fe = Fe.of_u256 beta
let endo_table t = Array.map (fun (x, y) -> (Fe.mul beta_fe x, y)) t

(* Fixed-base tables for G and lambda*G: width-10 wNAF, 256 odd
   multiples each (~16 KB per table as affine pairs), built once at
   module initialization (single-threaded, so safe under domains). *)
let g_window = 10
let g_table = odd_multiples generator (1 lsl (g_window - 2))
let lg_table = endo_table g_table

(* Width for on-the-fly tables of arbitrary points (8 odd multiples). *)
let pt_window = 5

let ladder_step acc digit table =
  if digit = 0 then acc
  else if digit > 0 then
    let x, y = table.(digit lsr 1) in
    madd acc x y
  else
    let x, y = table.((-digit) lsr 1) in
    madd acc x (Fe.neg y)

let is_generator pt =
  Fe.is_one pt.z && Fe.equal pt.x gx_fe && Fe.equal pt.y gy_fe

(* All scalar multiplication goes through the GLV decomposition: the
   256-bit ladder becomes two (or four) 128-bit wNAF digit streams over
   P and lambda*P tables sharing one ~128-step doubling chain.  A
   negated subscalar is handled by flipping its digit signs. *)
let scalar_mul k pt =
  if Uint256.is_zero k || is_infinity pt then infinity
  else begin
    let k = Scalar.reduce k in
    if Uint256.is_zero k then infinity
    else begin
      let fixed = is_generator pt in
      let w = if fixed then g_window else pt_window in
      let t, lt =
        if fixed then (g_table, lg_table)
        else begin
          let t = odd_multiples pt (1 lsl (w - 2)) in
          (t, endo_table t)
        end
      in
      let (n1, k1), (n2, k2) = Scalar.split k in
      let d1, l1 = wnaf k1 w in
      let d2, l2 = wnaf k2 w in
      let acc = ref infinity in
      for i = max l1 l2 - 1 downto 0 do
        acc := double !acc;
        acc := ladder_step !acc (if n1 then -d1.(i) else d1.(i)) t;
        acc := ladder_step !acc (if n2 then -d2.(i) else d2.(i)) lt
      done;
      !acc
    end
  end

let scalar_mul_base k = scalar_mul k generator

(* Shamir's trick with interleaved wNAF digits: one shared doubling
   chain, mixed additions against per-point affine tables — four digit
   streams after GLV decomposition of both scalars. *)
let double_scalar_mul a pa b pb =
  if is_infinity pa || Uint256.is_zero a then scalar_mul b pb
  else if is_infinity pb || Uint256.is_zero b then scalar_mul a pa
  else begin
    let a = Scalar.reduce a and b = Scalar.reduce b in
    if Uint256.is_zero a then scalar_mul b pb
    else if Uint256.is_zero b then scalar_mul a pa
    else begin
      let a_fixed = is_generator pa in
      let wa = if a_fixed then g_window else pt_window in
      let ta, lta =
        if a_fixed then (g_table, lg_table)
        else begin
          let t = odd_multiples pa (1 lsl (wa - 2)) in
          (t, endo_table t)
        end
      in
      let tb = odd_multiples pb (1 lsl (pt_window - 2)) in
      let ltb = endo_table tb in
      let (s1, a1), (s2, a2) = Scalar.split a in
      let (s3, b1), (s4, b2) = Scalar.split b in
      let da1, la1 = wnaf a1 wa in
      let da2, la2 = wnaf a2 wa in
      let db1, lb1 = wnaf b1 pt_window in
      let db2, lb2 = wnaf b2 pt_window in
      let len = max (max la1 la2) (max lb1 lb2) in
      let acc = ref infinity in
      for i = len - 1 downto 0 do
        acc := double !acc;
        acc := ladder_step !acc (if s1 then -da1.(i) else da1.(i)) ta;
        acc := ladder_step !acc (if s2 then -da2.(i) else da2.(i)) lta;
        acc := ladder_step !acc (if s3 then -db1.(i) else db1.(i)) tb;
        acc := ladder_step !acc (if s4 then -db2.(i) else db2.(i)) ltb
      done;
      !acc
    end
  end

(* ECDSA's final comparison without leaving Jacobian coordinates: does
   pt have an affine x-coordinate congruent to [r] mod n?  x = X/Z^2, so
   test X = c*Z^2 for c = r and (since x < p may exceed n) c = r + n. *)
let has_x_mod_n pt r =
  if is_infinity pt then false
  else begin
    let z2 = Fe.sqr pt.z in
    let matches c = Fe.equal (Fe.mul (Fe.of_u256 c) z2) pt.x in
    matches r
    ||
    let rn = fst (Uint256.add r n) in
    Uint256.compare rn p < 0 && matches rn
  end

(* --- public field helpers (Uint256 views over the fast kernel) ---------- *)

let fe_add a b = Fe.to_u256 (Fe.add (Fe.of_u256 a) (Fe.of_u256 b))
let fe_sub a b = Fe.to_u256 (Fe.sub (Fe.of_u256 a) (Fe.of_u256 b))
let fe_mul a b = Fe.to_u256 (Fe.mul (Fe.of_u256 a) (Fe.of_u256 b))
let fe_sqr a = Fe.to_u256 (Fe.sqr (Fe.of_u256 a))
let fe_inv a = Fe.to_u256 (Fe.inv (Fe.of_u256 a))

let fe_inv_batch xs =
  let any_zero = Array.exists Uint256.is_zero xs in
  if any_zero then invalid_arg "Secp256k1.fe_inv_batch: zero element";
  Array.map Fe.to_u256 (Fe.inv_batch (Array.map Fe.of_u256 xs))
