(* SHA-256 on native 63-bit ints.

   The compression loop keeps every quantity in one machine word and
   masks back to 32 bits only where an exact 32-bit value is required
   (rotations and the final state addition): intermediate sums of a few
   32-bit words stay below 2^36 and cannot overflow.  The message
   schedule is preallocated in the context and all hot-loop array and
   byte accesses are unchecked — indices are fixed by the algorithm. *)

let k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
     0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
     0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
     0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
     0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
     0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
     0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
     0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
     0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
     0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
     0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

let mask32 = 0xFFFFFFFF

type ctx = {
  h : int array; (* 8 state words *)
  buf : bytes; (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int; (* total bytes absorbed *)
  w : int array; (* message schedule scratch *)
}

let init () =
  {
    h =
      [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
         0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |];
    buf = Bytes.create 64;
    buf_len = 0;
    total = 0;
    w = Array.make 64 0;
  }

(* Works on an explicit state array so [finalize] can compress a copy of
   the running state without disturbing the context. *)
let compress_state h w block off =
  for i = 0 to 15 do
    let j = off + (i * 4) in
    Array.unsafe_set w i
      ((Char.code (Bytes.unsafe_get block j) lsl 24)
      lor (Char.code (Bytes.unsafe_get block (j + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get block (j + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get block (j + 3)))
  done;
  for i = 16 to 63 do
    let w15 = Array.unsafe_get w (i - 15) in
    let w2 = Array.unsafe_get w (i - 2) in
    let s0 =
      ((w15 lsr 7) lor (w15 lsl 25))
      lxor ((w15 lsr 18) lor (w15 lsl 14))
      lxor (w15 lsr 3)
    in
    let s1 =
      ((w2 lsr 17) lor (w2 lsl 15))
      lxor ((w2 lsr 19) lor (w2 lsl 13))
      lxor (w2 lsr 10)
    in
    (* s0/s1 carry rotation bits above 2^32; a single mask at the store
       clears everything the lxor mixed in up there *)
    Array.unsafe_set w i
      ((Array.unsafe_get w (i - 16) + s0 + Array.unsafe_get w (i - 7) + s1)
      land mask32)
  done;
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for i = 0 to 63 do
    let e_ = !e in
    let s1 =
      (((e_ lsr 6) lor (e_ lsl 26))
      lxor ((e_ lsr 11) lor (e_ lsl 21))
      lxor ((e_ lsr 25) lor (e_ lsl 7)))
      land mask32
    in
    let ch = e_ land !f lxor (lnot e_ land !g) land mask32 in
    let t1 = !hh + s1 + ch + Array.unsafe_get k i + Array.unsafe_get w i in
    let a_ = !a in
    let s0 =
      (((a_ lsr 2) lor (a_ lsl 30))
      lxor ((a_ lsr 13) lor (a_ lsl 19))
      lxor ((a_ lsr 22) lor (a_ lsl 10)))
      land mask32
    in
    let maj = a_ land !b lxor (a_ land !c) lxor (!b land !c) in
    hh := !g;
    g := !f;
    f := e_;
    e := (!d + t1) land mask32;
    d := !c;
    c := !b;
    b := a_;
    a := (t1 + s0 + maj) land mask32
  done;
  h.(0) <- (h.(0) + !a) land mask32;
  h.(1) <- (h.(1) + !b) land mask32;
  h.(2) <- (h.(2) + !c) land mask32;
  h.(3) <- (h.(3) + !d) land mask32;
  h.(4) <- (h.(4) + !e) land mask32;
  h.(5) <- (h.(5) + !f) land mask32;
  h.(6) <- (h.(6) + !g) land mask32;
  h.(7) <- (h.(7) + !hh) land mask32

let compress ctx block off = compress_state ctx.h ctx.w block off

let update_sub ctx b off len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Sha256.update_sub";
  ctx.total <- ctx.total + len;
  let pos = ref off and remaining = ref len in
  (* Fill a partially filled block buffer first. *)
  if ctx.buf_len > 0 then begin
    let take = min !remaining (64 - ctx.buf_len) in
    Bytes.blit b !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.buf_len = 64 then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !remaining >= 64 do
    compress ctx b !pos;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit b !pos ctx.buf 0 !remaining;
    ctx.buf_len <- !remaining
  end

let update ctx b = update_sub ctx b 0 (Bytes.length b)
let update_string ctx s = update ctx (Bytes.unsafe_of_string s)

(* Non-destructive finalize: the padding blocks are compressed into a
   *copy* of the running state, so the context stays valid — callers can
   keep absorbing and finalize again (running digests of a stream).

   The padding itself is built in place.  Bytes of [ctx.buf] at or past
   [buf_len] are dead storage (every later [update_sub] overwrites them
   before reading), so the common case — fewer than 56 buffered bytes —
   pads directly inside [ctx.buf] and allocates nothing beyond the state
   copy and the digest. *)
let finalize ctx =
  let total_bits = ctx.total * 8 in
  let bl = ctx.buf_len in
  let h = Array.copy ctx.h in
  let write_length b off =
    for i = 0 to 7 do
      Bytes.set b (off + i) (Char.chr ((total_bits lsr ((7 - i) * 8)) land 0xFF))
    done
  in
  if bl + 9 <= 64 then begin
    (* one final block: 0x80, zeros, 64-bit big-endian bit length *)
    Bytes.set ctx.buf bl '\x80';
    Bytes.fill ctx.buf (bl + 1) (56 - (bl + 1)) '\000';
    write_length ctx.buf 56;
    compress_state h ctx.w ctx.buf 0
  end
  else begin
    (* the length does not fit: a second, rare block carries it *)
    Bytes.set ctx.buf bl '\x80';
    Bytes.fill ctx.buf (bl + 1) (64 - (bl + 1)) '\000';
    compress_state h ctx.w ctx.buf 0;
    let last = Bytes.make 64 '\000' in
    write_length last 56;
    compress_state h ctx.w last 0
  end;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = h.(i) in
    Bytes.set out (i * 4) (Char.chr ((v lsr 24) land 0xFF));
    Bytes.set out ((i * 4) + 1) (Char.chr ((v lsr 16) land 0xFF));
    Bytes.set out ((i * 4) + 2) (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set out ((i * 4) + 3) (Char.chr (v land 0xFF))
  done;
  out

let digest_bytes b =
  let ctx = init () in
  update ctx b;
  finalize ctx

let digest_string s = digest_bytes (Bytes.unsafe_of_string s)

(* ----------------------------------------------------------------------
   Reference compression function: the original rotr-helper loop with
   checked accesses and per-step masking.  The vector and differential
   suites compare the fast loop above against this on every build.
   ---------------------------------------------------------------------- *)

module Ref = struct
  let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask32

  let compress_state h w block off =
    for i = 0 to 15 do
      let j = off + (i * 4) in
      w.(i) <-
        (Char.code (Bytes.get block j) lsl 24)
        lor (Char.code (Bytes.get block (j + 1)) lsl 16)
        lor (Char.code (Bytes.get block (j + 2)) lsl 8)
        lor Char.code (Bytes.get block (j + 3))
    done;
    for i = 16 to 63 do
      let s0 =
        rotr w.(i - 15) 7 lxor rotr w.(i - 15) 18 lxor (w.(i - 15) lsr 3)
      in
      let s1 =
        rotr w.(i - 2) 17 lxor rotr w.(i - 2) 19 lxor (w.(i - 2) lsr 10)
      in
      w.(i) <- (w.(i - 16) + s0 + w.(i - 7) + s1) land mask32
    done;
    let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
    let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
    for i = 0 to 63 do
      let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
      let ch = !e land !f lxor (lnot !e land !g) in
      let t1 = (!hh + s1 + ch + k.(i) + w.(i)) land mask32 in
      let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
      let maj = !a land !b lxor (!a land !c) lxor (!b land !c) in
      let t2 = (s0 + maj) land mask32 in
      hh := !g;
      g := !f;
      f := !e;
      e := (!d + t1) land mask32;
      d := !c;
      c := !b;
      b := !a;
      a := (t1 + t2) land mask32
    done;
    h.(0) <- (h.(0) + !a) land mask32;
    h.(1) <- (h.(1) + !b) land mask32;
    h.(2) <- (h.(2) + !c) land mask32;
    h.(3) <- (h.(3) + !d) land mask32;
    h.(4) <- (h.(4) + !e) land mask32;
    h.(5) <- (h.(5) + !f) land mask32;
    h.(6) <- (h.(6) + !g) land mask32;
    h.(7) <- (h.(7) + !hh) land mask32

  let digest_bytes b =
    let h =
      [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
         0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |]
    in
    let w = Array.make 64 0 in
    let len = Bytes.length b in
    let full = len / 64 in
    for i = 0 to full - 1 do
      compress_state h w b (i * 64)
    done;
    let rest = len - (full * 64) in
    let pad = Bytes.make (if rest + 9 <= 64 then 64 else 128) '\000' in
    Bytes.blit b (full * 64) pad 0 rest;
    Bytes.set pad rest '\x80';
    let total_bits = len * 8 in
    let off = Bytes.length pad - 8 in
    for i = 0 to 7 do
      Bytes.set pad (off + i)
        (Char.chr ((total_bits lsr ((7 - i) * 8)) land 0xFF))
    done;
    compress_state h w pad 0;
    if Bytes.length pad > 64 then compress_state h w pad 64;
    let out = Bytes.create 32 in
    for i = 0 to 7 do
      let v = h.(i) in
      Bytes.set out (i * 4) (Char.chr ((v lsr 24) land 0xFF));
      Bytes.set out ((i * 4) + 1) (Char.chr ((v lsr 16) land 0xFF));
      Bytes.set out ((i * 4) + 2) (Char.chr ((v lsr 8) land 0xFF));
      Bytes.set out ((i * 4) + 3) (Char.chr (v land 0xFF))
    done;
    out

  let digest_string s = digest_bytes (Bytes.of_string s)
end
