(** ECDSA over secp256k1 with deterministic nonces.

    This is the non-repudiation primitive of the ledger (paper §III-C):
    clients sign requests (π_c), the LSP signs receipts (π_s), and the TSA
    signs digest–timestamp pairs (π_t).  Nonces are derived RFC-6979-style
    from HMAC-SHA256, so signing is deterministic and needs no entropy
    source inside the sealed test environment. *)

type private_key

type public_key = Secp256k1.point
(** Transparent alias so callers (and the vector suite) can feed curve
    points — including pathological ones like the point at infinity —
    straight into {!verify}; [Secp256k1.point] itself stays abstract. *)

type signature = { r : Uint256.t; s : Uint256.t }

val generate : seed:string -> private_key * public_key
(** Derive a keypair deterministically from a seed string.  Distinct seeds
    give (overwhelmingly) distinct keys. *)

val public_key : private_key -> public_key

val sign : private_key -> Hash.t -> signature
(** Sign a 32-byte message digest. *)

val verify : public_key -> Hash.t -> signature -> bool
(** Check a signature against a digest; total (never raises). *)

val public_key_to_bytes : public_key -> bytes
(** 64-byte uncompressed encoding (x ∥ y). *)

val public_key_of_bytes : bytes -> public_key option
(** Parse and validate a 64-byte encoding; [None] if not on the curve. *)

val public_key_id : public_key -> Hash.t
(** Digest of the encoded public key — used as a member identifier. *)

val signature_to_bytes : signature -> bytes
(** 64-byte encoding (r ∥ s). *)

val signature_of_bytes : bytes -> signature option

val pp_signature : Format.formatter -> signature -> unit

(** {1 Reference pipeline}

    Signer/verifier over {!Secp256k1.Ref} — the pre-kernel long-division
    scalar arithmetic and double-and-add ladders.  Nonce derivation is
    identical, so [Ref.sign] must produce bit-for-bit the same signature
    as {!sign}; the differential suites assert this on every build. *)

module Ref : sig
  val sign : private_key -> Hash.t -> signature
  val verify : public_key -> Hash.t -> signature -> bool
end
