(** The secp256k1 elliptic curve: y² = x³ + 7 over F_p.

    The fast kernel represents field elements as ten 26-bit limbs in
    native ints with fused comba multiply + pseudo-Mersenne reduction
    (p = 2²⁵⁶ − 2³² − 977, so 2²⁶⁰ ≡ 2³⁶ + 15632), points in Jacobian
    coordinates, and scalar multiplication as wNAF ladders over
    precomputed affine odd-multiple tables (a fixed width-8 table for G,
    on-the-fly width-5 tables for arbitrary points) with Shamir's trick
    for the dual-scalar verify path.  {!Ref} keeps the original
    straightforward implementation alive for differential testing. *)

type fe = Uint256.t
(** A field element, canonical (< p). *)

type point
(** A curve point in Jacobian coordinates (the point at infinity is
    representable).  Values are immutable after creation and safe to
    share across domains. *)

val p : Uint256.t
(** The field prime. *)

val n : Uint256.t
(** The group order. *)

val generator : point

val infinity : point
val is_infinity : point -> bool

val of_affine : fe -> fe -> point
(** [of_affine x y] builds a point; the caller asserts it is on the curve
    (use {!is_on_curve} to check untrusted input). *)

val to_affine : point -> (fe * fe) option
(** [None] for the point at infinity. *)

val is_on_curve : fe -> fe -> bool

val double : point -> point
val add : point -> point -> point
val negate : point -> point

val scalar_mul : Uint256.t -> point -> point
(** [scalar_mul k pt] by a wNAF windowed ladder; detects [pt = G] and
    uses the precomputed fixed-base table. *)

val scalar_mul_base : Uint256.t -> point
(** [scalar_mul_base k] is [k·G] over the fixed-base table — the signing
    hot path. *)

val double_scalar_mul : Uint256.t -> point -> Uint256.t -> point -> point
(** [double_scalar_mul a pt_a b pt_b] computes [a·pt_a + b·pt_b] with a
    single shared doubling chain and interleaved wNAF digits (Shamir's
    trick) — the hot path of ECDSA verification. *)

val equal : point -> point -> bool
(** Structural equality of the represented affine points (computed by
    projective cross-comparison, no inversions). *)

val has_x_mod_n : point -> Uint256.t -> bool
(** [has_x_mod_n pt r] is true iff [pt] is finite and its affine
    x-coordinate is congruent to [r] mod n, tested in Jacobian
    coordinates (X = c·Z² for c = r or r + n) without a field
    inversion — ECDSA verification's final comparison.  [r] must be
    in [1, n). *)

(** {1 Field helpers (exposed for tests)} *)

val fe_add : fe -> fe -> fe
val fe_sub : fe -> fe -> fe
val fe_mul : fe -> fe -> fe
val fe_sqr : fe -> fe
val fe_inv : fe -> fe

val fe_inv_batch : fe array -> fe array
(** Invert a whole array with one modular inversion plus 3(k−1)
    multiplications (Montgomery's trick).  Raises [Invalid_argument] if
    any element is zero. *)

(** {1 Scalar arithmetic modulo the group order n} *)

module Scalar : sig
  val n : Uint256.t

  val reduce : Uint256.t -> Uint256.t
  (** Reduce a value < 2²⁵⁶ mod n (a single conditional subtraction,
      since 2²⁵⁶ < 2n). *)

  val reduce_wide : int array -> Uint256.t
  (** Reduce a wide limb array (e.g. a {!Uint256.mul_wide} product)
      mod n by repeated folding of the high half. *)

  val mul : Uint256.t -> Uint256.t -> Uint256.t
  val add : Uint256.t -> Uint256.t -> Uint256.t

  val inv : Uint256.t -> Uint256.t
  (** Modular inverse mod n; raises on zero. *)
end

(** {1 Reference kernel}

    The original implementation — generic 16-bit-limb arithmetic through
    [Uint256.mul_wide], repeated-fold reduction, MSB-first
    double-and-add — kept alive verbatim so the vector and differential
    suites can check the fast kernel against it on every build. *)

module Ref : sig
  type point

  val generator : point
  val infinity : point
  val is_infinity : point -> bool
  val of_affine : fe -> fe -> point
  val to_affine : point -> (fe * fe) option
  val is_on_curve : fe -> fe -> bool
  val double : point -> point
  val add : point -> point -> point
  val negate : point -> point
  val scalar_mul : Uint256.t -> point -> point
  val double_scalar_mul : Uint256.t -> point -> Uint256.t -> point -> point
  val equal : point -> point -> bool
  val fe_add : fe -> fe -> fe
  val fe_sub : fe -> fe -> fe
  val fe_mul : fe -> fe -> fe
  val fe_sqr : fe -> fe
  val fe_inv : fe -> fe
end
