let block_size = 64

let mac ~key msg =
  let key =
    if Bytes.length key > block_size then Sha256.digest_bytes key else key
  in
  let klen = Bytes.length key in
  let pad_key c =
    let b = Bytes.make block_size c in
    let cc = Char.code c in
    for i = 0 to klen - 1 do
      Bytes.unsafe_set b i
        (Char.unsafe_chr (Char.code (Bytes.unsafe_get key i) lxor cc))
    done;
    b
  in
  let ipad = pad_key '\x36' and opad = pad_key '\x5c' in
  let inner = Sha256.init () in
  Sha256.update inner ipad;
  Sha256.update inner msg;
  let inner_digest = Sha256.finalize inner in
  let outer = Sha256.init () in
  Sha256.update outer opad;
  Sha256.update outer inner_digest;
  Sha256.finalize outer

let mac_string ~key msg =
  mac ~key:(Bytes.of_string key) (Bytes.of_string msg)
