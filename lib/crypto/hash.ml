type t = bytes

let size = 32

let of_bytes b =
  if Bytes.length b <> size then invalid_arg "Hash.of_bytes: need 32 bytes";
  Bytes.copy b

let to_bytes t = Bytes.copy t

let of_hex s =
  if String.length s <> 64 then invalid_arg "Hash.of_hex: need 64 hex digits";
  let b = Bytes.create size in
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Hash.of_hex: bad digit"
  in
  for i = 0 to size - 1 do
    Bytes.set b i (Char.chr ((digit s.[2 * i] lsl 4) lor digit s.[(2 * i) + 1]))
  done;
  b

let hex_digits = "0123456789abcdef"

let to_hex t =
  let n = Bytes.length t in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code (Bytes.unsafe_get t i) in
    Bytes.unsafe_set out (2 * i) (String.unsafe_get hex_digits (c lsr 4));
    Bytes.unsafe_set out ((2 * i) + 1)
      (String.unsafe_get hex_digits (c land 0xf))
  done;
  Bytes.unsafe_to_string out

let equal = Bytes.equal
let compare = Bytes.compare

(* unsafe_to_string: Hashtbl.hash neither mutates nor retains its
   argument, so the copy the safe conversion makes buys nothing *)
let hash t = Hashtbl.hash (Bytes.unsafe_to_string t)
let zero = Bytes.make size '\000'
let digest_bytes b = Sha256.digest_bytes b
let digest_string s = Sha256.digest_string s

(* Inner Merkle nodes: every [t] is exactly [size] bytes by module
   invariant, so the blits below cannot go out of bounds. *)
let combine l r =
  let b = Bytes.create (2 * size) in
  Bytes.unsafe_blit l 0 b 0 size;
  Bytes.unsafe_blit r 0 b size size;
  Sha256.digest_bytes b

let combine_tagged tag l r =
  let tl = String.length tag in
  let b = Bytes.create (tl + (2 * size)) in
  Bytes.blit_string tag 0 b 0 tl;
  Bytes.unsafe_blit l 0 b tl size;
  Bytes.unsafe_blit r 0 b (tl + size) size;
  Sha256.digest_bytes b

let scatter key = Sha3.digest_string key

let short_hex t = String.sub (to_hex t) 0 8
let pp fmt t = Format.pp_print_string fmt (short_hex t)
