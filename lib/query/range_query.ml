open Ledger_crypto
open Ledger_mpt

type spec = Prefix of string | Between of { lo : string; hi : string option }
type window = { t1 : int; t2 : int }

type row = {
  clue : string;
  total : int;
  prefix_count : int;
  prefix_digest : Hash.t;
  entries : (int * Hash.t) list;
}

type page = { rows : row list; proof : Mpt.range_proof; cursor : string option }
type result_row = { r_clue : string; r_total : int; r_entries : (int * Hash.t) list }

(* --- key-space bounds ---------------------------------------------------- *)

(* Smallest nibble key sorting after every key that has prefix [p]:
   increment the last non-15 nibble and truncate; [None] (unbounded) when
   p is empty or all-15. *)
let prefix_succ p =
  let rec go i =
    if i < 0 then None
    else if p.(i) < 15 then begin
      let q = Array.sub p 0 (i + 1) in
      q.(i) <- q.(i) + 1;
      Some q
    end
    else go (i - 1)
  in
  go (Array.length p - 1)

let bounds = function
  | Prefix p ->
      let k = Query_index.key_of_clue p in
      (k, prefix_succ k)
  | Between { lo; hi } ->
      (Query_index.key_of_clue lo, Option.map Query_index.key_of_clue hi)

(* Smallest key strictly after cursor clue [c] in trie order. *)
let after_key c = Array.append (Query_index.key_of_clue c) [| 0 |]

let spec_matches spec clue =
  let lo, hi = bounds spec in
  Mpt.key_in_range (Query_index.key_of_clue clue) ~lo ~hi

(* --- server-side page assembly ------------------------------------------ *)

let row_of idx ?window clue =
  let total = Query_index.clue_count idx ~clue in
  let start =
    match window with
    | None -> 0
    | Some { t1; t2 = _ } ->
        let i = Query_index.first_at_or_after idx ~clue t1 in
        (* keep one pre-window entry as the boundary witness *)
        if i > 0 then i - 1 else 0
  in
  {
    clue;
    total;
    prefix_count = start;
    prefix_digest = Query_index.chain_at idx ~clue start;
    entries = Query_index.slice idx ~clue ~offset:start ~limit:(total - start);
  }

let page idx ~spec ?window ?after ~page_size () =
  if page_size <= 0 then invalid_arg "Range_query.page: page_size must be positive";
  let lo0, hi0 = bounds spec in
  let lo = match after with None -> lo0 | Some c -> after_key c in
  let trie = Query_index.trie idx in
  let keys, more = Mpt.take_range trie ~lo ?hi:hi0 page_size in
  let last_clue () =
    match List.rev keys with
    | (k, _) :: _ -> Option.get (Query_index.clue_of_key k)
    | [] -> invalid_arg "Range_query.page: empty page cannot have more rows"
  in
  let page_hi = if more then Some (after_key (last_clue ())) else hi0 in
  let rows =
    List.map
      (fun (k, _) -> row_of idx ?window (Option.get (Query_index.clue_of_key k)))
      keys
  in
  {
    rows;
    proof = Mpt.prove_range trie ~lo ~hi:page_hi;
    cursor = (if more then Some (last_clue ()) else None);
  }

(* --- client-side verification ------------------------------------------- *)

let rec check_entries ~prev ~last_jsn = function
  | [] -> Some prev
  | (jsn, tx) :: rest ->
      if jsn <= last_jsn then None
      else
        check_entries ~prev:(Query_index.chain_step prev jsn tx) ~last_jsn:jsn rest

let check_row ?window ~key ~value row =
  if Mpt.compare_keys key (Query_index.key_of_clue row.clue) <> 0 then
    Error "row/proof clue mismatch"
  else
    match Query_index.decode_value value with
    | None -> Error "corrupt committed clue value"
    | Some (count, chain) ->
        if row.total <> count then Error "row total disagrees with committed count"
        else if row.prefix_count < 0 then Error "negative prefix count"
        else if row.prefix_count + List.length row.entries <> count then
          Error "row does not cover the committed count"
        else if window = None && row.prefix_count <> 0 then
          Error "unwindowed row must carry the full list"
        else if
          row.prefix_count = 0
          && not (Hash.equal row.prefix_digest (Query_index.chain_seed row.clue))
        then Error "bad chain seed"
        else begin
          match check_entries ~prev:row.prefix_digest ~last_jsn:min_int row.entries with
          | None -> Error "row jsns not strictly ascending"
          | Some final ->
              if not (Hash.equal final chain) then
                Error "row chain does not close the committed digest"
              else begin
                match window with
                | None -> Ok { r_clue = row.clue; r_total = count; r_entries = row.entries }
                | Some { t1; t2 } ->
                    if
                      row.prefix_count > 0
                      && (match row.entries with
                         | (jsn, _) :: _ -> jsn >= t1
                         | [] -> true)
                    then Error "missing window boundary witness"
                    else
                      Ok
                        {
                          r_clue = row.clue;
                          r_total = count;
                          r_entries =
                            List.filter (fun (jsn, _) -> jsn >= t1 && jsn <= t2) row.entries;
                        }
              end
        end

let verify_page ~root ~spec ?window ?after ~page_size pg =
  if page_size <= 0 then Error "page_size must be positive"
  else begin
    let lo0, hi0 = bounds spec in
    let lo = match after with None -> lo0 | Some c -> after_key c in
    if Mpt.compare_keys lo0 lo > 0 then Error "cursor precedes the query range"
    else begin
      let hi_check =
        match pg.cursor with
        | Some c ->
            if List.length pg.rows <> page_size then
              Error "partial page cannot carry a continuation cursor"
            else begin
              match List.rev pg.rows with
              | last :: _ when String.equal last.clue c ->
                  let h = after_key c in
                  (match hi0 with
                  | Some h0 when Mpt.compare_keys h h0 > 0 ->
                      Error "cursor beyond the query range"
                  | _ -> Ok (Some h))
              | _ -> Error "cursor does not match the last row"
            end
        | None ->
            if List.length pg.rows > page_size then Error "page overflows page_size"
            else Ok hi0
      in
      match hi_check with
      | Error _ as e -> e
      | Ok hi -> (
          match Mpt.verify_range ~root ~lo ~hi pg.proof with
          | None -> Error "completeness proof rejected"
          | Some bindings ->
              if List.length bindings <> List.length pg.rows then
                Error "result set disagrees with completeness proof"
              else
                let rec go acc rows binds =
                  match (rows, binds) with
                  | [], [] -> Ok (List.rev acc, pg.cursor)
                  | row :: rows', (key, value) :: binds' -> (
                      match check_row ?window ~key ~value row with
                      | Error _ as e -> e
                      | Ok rr -> go (rr :: acc) rows' binds')
                  | _ -> Error "result set disagrees with completeness proof"
                in
                go [] pg.rows bindings)
    end
  end

let verify_pages ~root ~spec ?window ~page_size pages =
  let rec go acc after = function
    | [] -> Error "no pages"
    | [ pg ] -> (
        match verify_page ~root ~spec ?window ?after ~page_size pg with
        | Error _ as e -> e
        | Ok (rows, cursor) -> (
            match cursor with
            | Some _ -> Error "final page still carries a cursor"
            | None -> Ok (List.rev_append acc rows)))
    | pg :: rest -> (
        match verify_page ~root ~spec ?window ?after ~page_size pg with
        | Error _ as e -> e
        | Ok (rows, cursor) -> (
            match cursor with
            | None -> Error "non-final page lacks a cursor"
            | Some c -> go (List.rev_append rows acc) (Some c) rest))
  in
  go [] None pages

(* --- wire codec ---------------------------------------------------------- *)

let w_spec w = function
  | Prefix p ->
      Wire.w_u8 w 0;
      Wire.w_string w p
  | Between { lo; hi } ->
      Wire.w_u8 w 1;
      Wire.w_string w lo;
      Wire.w_option w (Wire.w_string w) hi

let r_spec r =
  match Wire.r_u8 r with
  | 0 -> Prefix (Wire.r_string r)
  | 1 ->
      let lo = Wire.r_string r in
      let hi = Wire.r_option r (fun () -> Wire.r_string r) in
      Between { lo; hi }
  | _ -> raise Wire.Corrupt

let w_window w { t1; t2 } =
  Wire.w_int w t1;
  Wire.w_int w t2

let r_window r =
  let t1 = Wire.r_int r in
  let t2 = Wire.r_int r in
  { t1; t2 }

let w_row w row =
  Wire.w_string w row.clue;
  Wire.w_int w row.total;
  Wire.w_int w row.prefix_count;
  Wire.w_hash w row.prefix_digest;
  Wire.w_list w
    (fun (jsn, tx) ->
      Wire.w_int w jsn;
      Wire.w_hash w tx)
    row.entries

let r_row r =
  let clue = Wire.r_string r in
  let total = Wire.r_int r in
  let prefix_count = Wire.r_int r in
  let prefix_digest = Wire.r_hash r in
  let entries =
    Wire.r_list ~max:1_000_000 r (fun () ->
        let jsn = Wire.r_int r in
        let tx = Wire.r_hash r in
        (jsn, tx))
  in
  { clue; total; prefix_count; prefix_digest; entries }

let w_page w pg =
  Wire.w_list w (w_row w) pg.rows;
  Mpt.w_range_proof w pg.proof;
  Wire.w_option w (Wire.w_string w) pg.cursor

let r_page r =
  let rows = Wire.r_list ~max:100_000 r (fun () -> r_row r) in
  let proof = Mpt.r_range_proof r in
  let cursor = Wire.r_option r (fun () -> Wire.r_string r) in
  { rows; proof; cursor }

let encode_page pg =
  let w = Wire.writer ~initial:1024 () in
  w_page w pg;
  Wire.contents w

let decode_page b = Wire.decode b r_page
let page_bytes pg = Bytes.length (encode_page pg)

(* Canonical description of a query — the verifier string for the
   (root, query) verification cache. *)
let describe ~spec ?window ~page_size () =
  let w = Wire.writer ~initial:64 () in
  w_spec w spec;
  Wire.w_option w (w_window w) window;
  Wire.w_int w page_size;
  "query:" ^ Hash.to_hex (Hash.digest_bytes (Wire.contents w))
