open Ledger_crypto
open Ledger_mpt

type entry = { e_jsn : int; e_tx : Hash.t; e_chain : Hash.t }
type cell = { mutable count : int; mutable arr : entry array }

type t = {
  trie : Mpt.t;
  tbl : (string, cell) Hashtbl.t;
  mutable entries : int;
}

let create () = { trie = Mpt.create (); tbl = Hashtbl.create 64; entries = 0 }
let trie t = t.trie
let root t = Mpt.root_hash t.trie
let cardinal t = Mpt.cardinal t.trie
let entries t = t.entries

(* --- key and commitment formats ----------------------------------------- *)

let key_of_clue clue = Nibble.of_string clue

let clue_of_key key =
  let n = Array.length key in
  if n mod 2 <> 0 then None
  else
    let ok = ref true in
    let b = Bytes.create (n / 2) in
    for i = 0 to (n / 2) - 1 do
      let hi = key.(2 * i) and lo = key.((2 * i) + 1) in
      if hi < 0 || hi > 15 || lo < 0 || lo > 15 then ok := false
      else Bytes.set b i (Char.chr ((hi lsl 4) lor lo))
    done;
    if !ok then Some (Bytes.to_string b) else None

let chain_seed clue = Hash.scatter clue

let chain_step prev jsn tx =
  let w = Wire.writer ~initial:80 () in
  Wire.w_hash w prev;
  Wire.w_int w jsn;
  Wire.w_hash w tx;
  Hash.digest_bytes (Wire.contents w)

let committed_value ~count ~chain =
  let w = Wire.writer ~initial:48 () in
  Wire.w_int w count;
  Wire.w_hash w chain;
  Wire.contents w

let decode_value b =
  Wire.decode b (fun r ->
      let count = Wire.r_int r in
      if count < 0 then raise Wire.Corrupt;
      let chain = Wire.r_hash r in
      (count, chain))

(* --- maintenance --------------------------------------------------------- *)

let cell_push cell e =
  let cap = Array.length cell.arr in
  if cell.count = cap then begin
    let bigger =
      Array.make (if cap = 0 then 4 else 2 * cap)
        { e_jsn = 0; e_tx = Hash.zero; e_chain = Hash.zero }
    in
    Array.blit cell.arr 0 bigger 0 cell.count;
    cell.arr <- bigger
  end;
  cell.arr.(cell.count) <- e;
  cell.count <- cell.count + 1

let add t ~clue ~jsn ~tx =
  if String.length clue = 0 then ()
  else begin
    let cell =
      match Hashtbl.find_opt t.tbl clue with
      | Some c -> c
      | None ->
          let c = { count = 0; arr = [||] } in
          Hashtbl.replace t.tbl clue c;
          c
    in
    let prev =
      if cell.count = 0 then chain_seed clue
      else cell.arr.(cell.count - 1).e_chain
    in
    if cell.count > 0 && cell.arr.(cell.count - 1).e_jsn = jsn then
      (* a journal listing the same clue twice contributes one entry *)
      ()
    else begin
      if cell.count > 0 && cell.arr.(cell.count - 1).e_jsn > jsn then
        invalid_arg "Query_index.add: jsns must be strictly increasing per clue";
      cell_push cell { e_jsn = jsn; e_tx = tx; e_chain = chain_step prev jsn tx };
      t.entries <- t.entries + 1;
      Mpt.insert t.trie ~key:(key_of_clue clue)
        (committed_value ~count:cell.count
           ~chain:cell.arr.(cell.count - 1).e_chain)
    end
  end

(* --- per-clue reads ------------------------------------------------------ *)

let clue_count t ~clue =
  match Hashtbl.find_opt t.tbl clue with Some c -> c.count | None -> 0

let slice t ~clue ~offset ~limit =
  if offset < 0 || limit < 0 then invalid_arg "Query_index.slice";
  match Hashtbl.find_opt t.tbl clue with
  | None -> []
  | Some cell ->
      let n = min limit (max 0 (cell.count - offset)) in
      List.init n (fun i ->
          let e = cell.arr.(offset + i) in
          (e.e_jsn, e.e_tx))

(* Chain digest after the first [n] entries (the seed for [n = 0]). *)
let chain_at t ~clue n =
  if n = 0 then chain_seed clue
  else
    match Hashtbl.find_opt t.tbl clue with
    | Some cell when n <= cell.count -> cell.arr.(n - 1).e_chain
    | _ -> invalid_arg "Query_index.chain_at"

(* Index of the first entry with jsn >= [jsn]; [count] when none. *)
let first_at_or_after t ~clue jsn =
  match Hashtbl.find_opt t.tbl clue with
  | None -> 0
  | Some cell ->
      let lo = ref 0 and hi = ref cell.count in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if cell.arr.(mid).e_jsn < jsn then lo := mid + 1 else hi := mid
      done;
      !lo

(* --- point proofs -------------------------------------------------------- *)

let prove_clue t ~clue = Mpt.prove t.trie ~key:(key_of_clue clue)
let prove_absent_clue t ~clue = Mpt.prove_absent t.trie ~key:(key_of_clue clue)
