open Ledger_crypto
open Ledger_mpt

type entry = { e_jsn : int; e_tx : Hash.t; e_chain : Hash.t }
type cell = { mutable count : int; mutable arr : entry array }

module SMap = Map.Make (String)

(* Frozen view of a cell: the entry array is shared with the live cell
   (the writer appends only at indices >= [fn]; capacity growth swaps in
   a fresh array), the count is pinned.  Kept in a persistent map that is
   republished on every {!add}, so {!freeze} is O(1) and reads never
   touch the writer's hashtable. *)
type fcell = { fa : entry array; fn : int }

type t = {
  trie : Mpt.t;
  tbl : (string, cell) Hashtbl.t;  (* writer-side mutable cells *)
  mutable fcells : fcell SMap.t;  (* read-side frozen mirror *)
  mutable entries : int;
}

let create () =
  { trie = Mpt.create (); tbl = Hashtbl.create 64; fcells = SMap.empty;
    entries = 0 }
let trie t = t.trie
let root t = Mpt.root_hash t.trie
let cardinal t = Mpt.cardinal t.trie
let entries t = t.entries

(* --- key and commitment formats ----------------------------------------- *)

let key_of_clue clue = Nibble.of_string clue

let clue_of_key key =
  let n = Array.length key in
  if n mod 2 <> 0 then None
  else
    let ok = ref true in
    let b = Bytes.create (n / 2) in
    for i = 0 to (n / 2) - 1 do
      let hi = key.(2 * i) and lo = key.((2 * i) + 1) in
      if hi < 0 || hi > 15 || lo < 0 || lo > 15 then ok := false
      else Bytes.set b i (Char.chr ((hi lsl 4) lor lo))
    done;
    if !ok then Some (Bytes.to_string b) else None

let chain_seed clue = Hash.scatter clue

let chain_step prev jsn tx =
  let w = Wire.writer ~initial:80 () in
  Wire.w_hash w prev;
  Wire.w_int w jsn;
  Wire.w_hash w tx;
  Hash.digest_bytes (Wire.contents w)

let committed_value ~count ~chain =
  let w = Wire.writer ~initial:48 () in
  Wire.w_int w count;
  Wire.w_hash w chain;
  Wire.contents w

let decode_value b =
  Wire.decode b (fun r ->
      let count = Wire.r_int r in
      if count < 0 then raise Wire.Corrupt;
      let chain = Wire.r_hash r in
      (count, chain))

(* --- maintenance --------------------------------------------------------- *)

let cell_push cell e =
  let cap = Array.length cell.arr in
  if cell.count = cap then begin
    let bigger =
      Array.make (if cap = 0 then 4 else 2 * cap)
        { e_jsn = 0; e_tx = Hash.zero; e_chain = Hash.zero }
    in
    Array.blit cell.arr 0 bigger 0 cell.count;
    cell.arr <- bigger
  end;
  cell.arr.(cell.count) <- e;
  cell.count <- cell.count + 1

let add t ~clue ~jsn ~tx =
  if String.length clue = 0 then ()
  else begin
    let cell =
      match Hashtbl.find_opt t.tbl clue with
      | Some c -> c
      | None ->
          let c = { count = 0; arr = [||] } in
          Hashtbl.replace t.tbl clue c;
          c
    in
    let prev =
      if cell.count = 0 then chain_seed clue
      else cell.arr.(cell.count - 1).e_chain
    in
    if cell.count > 0 && cell.arr.(cell.count - 1).e_jsn = jsn then
      (* a journal listing the same clue twice contributes one entry *)
      ()
    else begin
      if cell.count > 0 && cell.arr.(cell.count - 1).e_jsn > jsn then
        invalid_arg "Query_index.add: jsns must be strictly increasing per clue";
      cell_push cell { e_jsn = jsn; e_tx = tx; e_chain = chain_step prev jsn tx };
      t.entries <- t.entries + 1;
      t.fcells <- SMap.add clue { fa = cell.arr; fn = cell.count } t.fcells;
      Mpt.insert t.trie ~key:(key_of_clue clue)
        (committed_value ~count:cell.count
           ~chain:cell.arr.(cell.count - 1).e_chain)
    end
  end

let freeze t =
  { trie = Mpt.freeze t.trie; tbl = Hashtbl.create 1; fcells = t.fcells;
    entries = t.entries }

(* --- per-clue reads ------------------------------------------------------ *)

(* All reads go through the frozen mirror so they behave identically on
   the live index and on a {!freeze} snapshot read from another domain. *)

let clue_count t ~clue =
  match SMap.find_opt clue t.fcells with Some c -> c.fn | None -> 0

let slice t ~clue ~offset ~limit =
  if offset < 0 || limit < 0 then invalid_arg "Query_index.slice";
  match SMap.find_opt clue t.fcells with
  | None -> []
  | Some c ->
      let n = min limit (max 0 (c.fn - offset)) in
      List.init n (fun i ->
          let e = c.fa.(offset + i) in
          (e.e_jsn, e.e_tx))

(* Chain digest after the first [n] entries (the seed for [n = 0]). *)
let chain_at t ~clue n =
  if n = 0 then chain_seed clue
  else
    match SMap.find_opt clue t.fcells with
    | Some c when n <= c.fn -> c.fa.(n - 1).e_chain
    | _ -> invalid_arg "Query_index.chain_at"

(* Index of the first entry with jsn >= [jsn]; [count] when none. *)
let first_at_or_after t ~clue jsn =
  match SMap.find_opt clue t.fcells with
  | None -> 0
  | Some c ->
      let lo = ref 0 and hi = ref c.fn in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if c.fa.(mid).e_jsn < jsn then lo := mid + 1 else hi := mid
      done;
      !lo

(* --- point proofs -------------------------------------------------------- *)

let prove_clue t ~clue = Mpt.prove t.trie ~key:(key_of_clue clue)
let prove_absent_clue t ~clue = Mpt.prove_absent t.trie ~key:(key_of_clue clue)
