(** Ordered clue index backing the verifiable query layer.

    The main clue MPT ({!Ledger_mpt.Mpt.insert_string}) scatters keys with
    SHA-3, which destroys lexicographic order — fine for point lookups,
    useless for range scans.  This index keeps a second trie keyed by the
    {e raw} nibble path of the clue, so trie order is plain byte
    lexicographic order and {!Ledger_mpt.Mpt.prove_range} proofs certify
    completeness of prefix/range scans.

    Per clue the trie commits [(count, chain)] where [chain] is a rolling
    hash over the clue's (jsn, tx-hash) pairs:
    [h_0 = scatter clue], [h_i = H(h_(i-1) || jsn_i || tx_i)].  A verifier
    holding a suffix of the list and the digest [h_k] preceding it can
    replay the chain to the committed [h_count] — the basis for
    time-windowed queries whose dropped epochs are detectable.

    The index is a deterministic pure function of committed journal
    history: any auditor or replica replaying the journal stream derives
    the same root, which is what anchors query verification to the
    ledger's receipts. *)

open Ledger_crypto
open Ledger_mpt

type t

val create : unit -> t

val add : t -> clue:string -> jsn:int -> tx:Hash.t -> unit
(** Record that journal [jsn] (in transaction [tx]) carries [clue].
    Empty clues are ignored (they have no nibble path); a journal listing
    the same clue twice contributes one entry.
    @raise Invalid_argument if [jsn] decreases for a clue. *)

val root : t -> Hash.t
val cardinal : t -> int
(** Distinct clues. *)

val entries : t -> int
(** Total (clue, jsn) pairs indexed. *)

val trie : t -> Mpt.t
(** The underlying ordered trie — range/absence proofs are taken here. *)

val freeze : t -> t
(** O(1) immutable snapshot: {!Ledger_mpt.Mpt.freeze} of the trie plus
    the persistent per-clue mirror.  Every read ({!clue_count}, {!slice},
    {!chain_at}, {!first_at_or_after}, proofs, range scans) works on the
    result from any domain while the original keeps indexing.  Only read
    on the result. *)

(** {1 Key and commitment formats} *)

val key_of_clue : string -> int array
val clue_of_key : int array -> string option
(** Inverse of {!key_of_clue}; [None] for odd-length or out-of-range
    nibble paths. *)

val chain_seed : string -> Hash.t
val chain_step : Hash.t -> int -> Hash.t -> Hash.t
val committed_value : count:int -> chain:Hash.t -> bytes
val decode_value : bytes -> (int * Hash.t) option

(** {1 Per-clue reads} *)

val clue_count : t -> clue:string -> int

val slice : t -> clue:string -> offset:int -> limit:int -> (int * Hash.t) list
(** At most [limit] (jsn, tx) pairs from position [offset], oldest first;
    O(limit) allocation. *)

val chain_at : t -> clue:string -> int -> Hash.t
(** Chain digest after the first [n] entries ({!chain_seed} for [n = 0]).
    @raise Invalid_argument when [n] exceeds the clue's count. *)

val first_at_or_after : t -> clue:string -> int -> int
(** Index of the first entry with [jsn >= t]; the clue's count if none. *)

(** {1 Point proofs} *)

val prove_clue : t -> clue:string -> Mpt.proof option
val prove_absent_clue : t -> clue:string -> Mpt.absence_proof option
