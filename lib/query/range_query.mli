(** Verifiable range/prefix queries with completeness proofs and
    verifiable pagination (DESIGN.md §16).

    A query names a clue range — [Prefix p] or the half-open
    [Between {lo; hi}] in byte-lexicographic order — plus an optional jsn
    window.  The service answers in fixed-size pages; every page carries a
    pruned-subtrie completeness proof over exactly the key interval it
    claims to cover, so the client re-derives the full, ordered,
    untampered result set from the committed {!Query_index} root alone:

    - {e omitted / added / altered rows} change the recomputed root;
    - {e tampered jsn lists} break the per-clue rolling-hash chain that
      the committed value closes;
    - {e dropped / re-ordered / truncated pages} break cursor chaining:
      page N's proof covers [[cursor_(N-1), cursor_N)) and the final page
      must cover to the end of the query range;
    - {e hidden epochs} under a window are detectable because the suffix
      the service returns must close the committed chain and start with a
      boundary witness below [t1]. *)

open Ledger_crypto

type spec = Prefix of string | Between of { lo : string; hi : string option }

type window = { t1 : int; t2 : int }
(** Inclusive jsn window. *)

type row = {
  clue : string;
  total : int;  (** committed number of entries for this clue *)
  prefix_count : int;  (** entries elided before the returned suffix *)
  prefix_digest : Hash.t;  (** chain digest over the elided prefix *)
  entries : (int * Hash.t) list;  (** (jsn, tx) suffix, oldest first *)
}

type page = {
  rows : row list;
  proof : Ledger_mpt.Mpt.range_proof;
  cursor : string option;  (** last clue of the page; [None] on the final page *)
}

type result_row = {
  r_clue : string;
  r_total : int;
  r_entries : (int * Hash.t) list;  (** window-filtered when a window was given *)
}

val bounds : spec -> int array * int array option
(** Nibble-key interval [[lo, hi)] a spec covers. *)

val after_key : string -> int array
(** Smallest trie key strictly after a cursor clue. *)

val spec_matches : spec -> string -> bool

(** {1 Server side} *)

val page :
  Query_index.t ->
  spec:spec ->
  ?window:window ->
  ?after:string ->
  page_size:int ->
  unit ->
  page
(** Assemble one page of at most [page_size] clues starting after the
    cursor [after] (or at the start of the range). *)

(** {1 Client side} *)

val verify_page :
  root:Hash.t ->
  spec:spec ->
  ?window:window ->
  ?after:string ->
  page_size:int ->
  page ->
  (result_row list * string option, string) result
(** Check one page against the trusted index [root]; returns the verified
    rows plus the continuation cursor. *)

val verify_pages :
  root:Hash.t ->
  spec:spec ->
  ?window:window ->
  page_size:int ->
  page list ->
  (result_row list, string) result
(** Check a whole paginated scan: cursor chaining between pages, no
    trailing cursor on the final page, and each page against [root]. *)

(** {1 Wire codec} *)

val w_spec : Wire.writer -> spec -> unit
val r_spec : Wire.reader -> spec
val w_window : Wire.writer -> window -> unit
val r_window : Wire.reader -> window
val w_page : Wire.writer -> page -> unit
val r_page : Wire.reader -> page
val encode_page : page -> bytes
val decode_page : bytes -> page option
val page_bytes : page -> int

val describe : spec:spec -> ?window:window -> page_size:int -> unit -> string
(** Canonical digest string of a query — the {!Verify_cache} verifier key. *)
