open Ledger_storage
open Ledger_bench_util

type config = {
  drop_prob : float;
  dup_prob : float;
  garble_prob : float;
  reorder_prob : float;
  delay_prob : float;
  delay_ms : float;
}

let none =
  { drop_prob = 0.; dup_prob = 0.; garble_prob = 0.; reorder_prob = 0.;
    delay_prob = 0.; delay_ms = 0. }

let lossy ?(drop = 0.05) ?(dup = 0.01) ?(garble = 0.01) ?(reorder = 0.01)
    ?(delay = 0.05) ?(delay_ms = 400.) () =
  { drop_prob = drop; dup_prob = dup; garble_prob = garble;
    reorder_prob = reorder; delay_prob = delay; delay_ms }

type stats = {
  mutable calls : int;
  mutable drops : int;
  mutable dups : int;
  mutable garbles : int;
  mutable reorders : int;
  mutable delays : int;
}

let stats_to_string s =
  Printf.sprintf
    "calls=%d drops=%d dups=%d garbles=%d reorders=%d delays=%d" s.calls
    s.drops s.dups s.garbles s.reorders s.delays

type t = {
  rng : Det_rng.t;
  config : config;
  clock : Clock.t;
  latency : Latency_model.t option;
  inner : Ledger_core.Transport.t;
  stats : stats;
  mutable held : bytes option;  (* response in flight, for reordering *)
  mutable partitioned : bool;
}

let create ~rng ~config ?latency ~clock inner =
  { rng; config; clock; latency; inner;
    stats =
      { calls = 0; drops = 0; dups = 0; garbles = 0; reorders = 0; delays = 0 };
    held = None; partitioned = false }

let stats t = t.stats
let set_partitioned t on = t.partitioned <- on
let partitioned t = t.partitioned

(* A jitter source over the same seeded RNG that drives the fault
   schedule — hand it to Transport.request's [backoff_rng] so one seed
   replays faults and retry timing together. *)
let backoff_rng t () = float_of_int (Det_rng.int t.rng 1_000_000) /. 1e6

let hit rng prob =
  prob > 0. && Det_rng.int rng 1_000_000 < int_of_float (prob *. 1e6)

let garble rng resp =
  let b = Bytes.copy resp in
  if Bytes.length b > 0 then begin
    let flips = 1 + Det_rng.int rng 3 in
    for _ = 1 to flips do
      let off = Det_rng.int rng (Bytes.length b) in
      let mask = 1 lsl Det_rng.int rng 8 in
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor mask))
    done
  end;
  b

let transport t req =
  t.stats.calls <- t.stats.calls + 1;
  Ledger_obs.Metrics.incr "faulty_transport_calls_total";
  (* a hard partition loses every message without consuming any of the
     probabilistic fate draws, so healing resumes the seeded schedule
     exactly where it left off *)
  if t.partitioned then begin
    t.stats.drops <- t.stats.drops + 1;
    Ledger_obs.Metrics.incr "faulty_transport_drops_total";
    raise (Ledger_core.Transport.Timeout "network partitioned")
  end;
  (* draw the whole fate of this exchange up front so the schedule depends
     only on the seed and the call sequence, not on short-circuiting *)
  let dropped = hit t.rng t.config.drop_prob in
  let duplicated = hit t.rng t.config.dup_prob in
  let delayed = hit t.rng t.config.delay_prob in
  let garbled = hit t.rng t.config.garble_prob in
  let reordered = hit t.rng t.config.reorder_prob in
  let delay_scale = 0.5 +. (float_of_int (Det_rng.int t.rng 1000) /. 1000.) in
  (match t.latency with
  | Some model -> Latency_model.charge_net model t.clock
  | None -> ());
  if delayed then begin
    t.stats.delays <- t.stats.delays + 1;
    Ledger_obs.Metrics.incr "faulty_transport_delays_total";
    Clock.advance_ms t.clock (t.config.delay_ms *. delay_scale)
  end;
  if dropped then begin
    t.stats.drops <- t.stats.drops + 1;
    Ledger_obs.Metrics.incr "faulty_transport_drops_total";
    raise (Ledger_core.Transport.Timeout "message lost in transit")
  end;
  (* a duplicated request reaches the service twice: the second delivery
     exercises idempotency/nonce handling; the caller sees one response *)
  if duplicated then begin
    t.stats.dups <- t.stats.dups + 1;
    Ledger_obs.Metrics.incr "faulty_transport_dups_total";
    ignore (t.inner req)
  end;
  let resp = t.inner req in
  let resp =
    if garbled then begin
      t.stats.garbles <- t.stats.garbles + 1;
      Ledger_obs.Metrics.incr "faulty_transport_garbles_total";
      garble t.rng resp
    end
    else resp
  in
  if reordered then begin
    t.stats.reorders <- t.stats.reorders + 1;
    Ledger_obs.Metrics.incr "faulty_transport_reorders_total";
    match t.held with
    | Some stale ->
        t.held <- Some resp;
        stale
    | None ->
        t.held <- Some resp;
        resp
  end
  else resp
