open Ledger_crypto
open Ledger_storage
open Ledger_core
open Ledger_shard
open Ledger_bench_util

(* --- scenarios -------------------------------------------------------------- *)

type event =
  | Kill_shard of int
  | Tear_checkpoint of int
  | Partition
  | Heal_partition
  | Equivocate of { epoch : int }

let event_to_string = function
  | Kill_shard i -> Printf.sprintf "kill shard %d" i
  | Tear_checkpoint i -> Printf.sprintf "tear shard %d checkpoint" i
  | Partition -> "partition repair transport"
  | Heal_partition -> "heal partition"
  | Equivocate { epoch } -> Printf.sprintf "equivocate at epoch %d" epoch

type scenario = {
  name : string;
  seed : int;
  shards : int;
  ticks : int;
  settle_ticks : int;
  appends_per_tick : int;
  seal_every : int;
  schedule : (int * event) list;
}

type report = {
  scenario : string;
  seed : int;
  appends : int;
  rejected : int;
  degraded_epochs : int;
  full_epochs : int;
  repairs : int;
  spot_verifications : int;
  fork_evidence : int;
  converged : bool;
  failures : string list;
}

let passed r = r.converged && r.failures = []

let report_to_string r =
  Printf.sprintf
    "%s seed=%d: %s (appends=%d rejected=%d epochs=%d+%dd repairs=%d \
     verified=%d forks=%d)%s"
    r.scenario r.seed
    (if passed r then "PASS" else "FAIL")
    r.appends r.rejected r.full_epochs r.degraded_epochs r.repairs
    r.spot_verifications r.fork_evidence
    (match r.failures with
    | [] -> ""
    | fs -> "\n  " ^ String.concat "\n  " fs)

(* --- fleet pair ------------------------------------------------------------- *)

(* Subject and reference share the base name, so every name-derived
   secret (member keys, LSP keys, the fleet service key) matches and
   identically-driven shards commit byte-identical journals.  The
   reference never faults: it is simultaneously the oracle the subject
   must converge to and the repair source the supervisor resyncs from. *)
let fleet_config ~shards =
  {
    Sharded_ledger.base =
      { Ledger.default_config with Ledger.name = "chaos-fleet"; block_size = 4;
        fam_delta = 3; crypto = Crypto_profile.default_simulated };
    shards;
  }

let make_fleet ~shards =
  let clock = Clock.create () in
  let fleet = Sharded_ledger.create ~config:(fleet_config ~shards) ~clock () in
  let member, priv =
    Sharded_ledger.new_member fleet ~name:"chaos-user" ~role:Roles.Regular_user
  in
  (clock, fleet, member, priv)

let fresh_dir tag =
  let d = Filename.temp_file "chaos_orch" tag in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

(* Advance every clock of both fleets to the global maximum.  This is
   the orchestrator acting as the cross-fleet barrier: healthy shards in
   subject and reference then observe identical time, so their committed
   journals (which embed server timestamps) stay byte-identical. *)
let clocks_of fleet =
  Sharded_ledger.fleet_clock fleet
  :: List.init (Sharded_ledger.shard_count fleet) (fun i ->
         Sharded_ledger.shard_clock fleet i)

let barrier fleets =
  let all = List.concat_map clocks_of fleets in
  let horizon = List.fold_left (fun acc c -> max acc (Clock.now c)) 0L all in
  List.iter
    (fun c ->
      let d = Int64.sub horizon (Clock.now c) in
      if d > 0L then Clock.advance c d)
    all

(* --- one scenario ----------------------------------------------------------- *)

type run_state = {
  mutable appends : int;
  mutable rejected : int;
  mutable degraded_epochs : int;
  mutable full_epochs : int;
  mutable repairs : int;
  mutable spot_verifications : int;
  mutable fork_evidence : int;
  mutable failures_rev : string list;
}

let fail st fmt =
  Printf.ksprintf (fun msg -> st.failures_rev <- msg :: st.failures_rev) fmt

let run (scenario : scenario) =
  let st =
    { appends = 0; rejected = 0; degraded_epochs = 0; full_epochs = 0;
      repairs = 0; spot_verifications = 0; fork_evidence = 0;
      failures_rev = [] }
  in
  let rng = Det_rng.create ~seed:scenario.seed in
  let _sub_clock, subject, member, priv = make_fleet ~shards:scenario.shards in
  let _ref_clock, reference, ref_member, ref_priv =
    make_fleet ~shards:scenario.shards
  in
  (* repair source: the reference's fleet endpoint behind a seeded lossy
     transport — repairs must survive the same network the clients do *)
  let faulty =
    Faulty_transport.create ~rng
      ~config:(Faulty_transport.lossy ~drop:0.05 ~delay:0.02 ())
      ~clock:(Sharded_ledger.fleet_clock subject)
      (fun b -> Sharded_service.handle reference b)
  in
  let supervisor =
    Shard_supervisor.create
      ~policy:
        { Shard_supervisor.default_policy with
          Shard_supervisor.suspect_after = 2 }
      ~source:(Faulty_transport.transport faulty)
      ~transport_policy:
        { Transport.default_policy with Transport.max_attempts = 8 }
      ~backoff_rng:(Faulty_transport.backoff_rng faulty)
      ~fleet:subject
      ~scratch_dir:(fresh_dir scenario.name)
      ()
  in
  (* gossip mesh: two independent subject observers cross-checking the
     service's signed epoch announcements *)
  let service_pub = Sharded_ledger.service_public_key subject in
  let base_name = (Sharded_ledger.config subject).Sharded_ledger.base.Ledger.name in
  let peer_a = Gossip.create ~name:"auditor-a" ~service_pub ~ledger:base_name () in
  let peer_b = Gossip.create ~name:"auditor-b" ~service_pub ~ledger:base_name () in
  let killed = Array.make scenario.shards false in
  let apply_event tick = function
    | Kill_shard i ->
        if not killed.(i) then begin
          killed.(i) <- true;
          Stream_store.Unsafe.kill
            (Ledger.backing_store (Sharded_ledger.shard subject i));
          Shard_supervisor.quarantine supervisor i
        end
    | Tear_checkpoint i ->
        let dir = Shard_supervisor.checkpoint_dir supervisor i in
        if Sys.file_exists dir then begin
          let plan =
            Fault_plan.plan ~seed:(scenario.seed + (31 * tick) + i)
              ~bit_flips:0 ~truncations:1 ~zero_ranges:0 ~torn_frames:1 ~dir ()
          in
          Fault_plan.apply plan ~dir
        end
    | Partition -> Faulty_transport.set_partitioned faulty true
    | Heal_partition -> Faulty_transport.set_partitioned faulty false
    | Equivocate { epoch } -> (
        match
          ( Sharded_ledger.announce_epoch subject epoch,
            Sharded_ledger.Unsafe.equivocate subject ~epoch )
        with
        | Some honest, Some forged -> (
            ignore (Gossip.observe peer_a honest);
            ignore (Gossip.observe peer_b forged);
            match Gossip.exchange peer_a peer_b with
            | None -> fail st "equivocation at epoch %d went undetected" epoch
            | Some ev ->
                st.fork_evidence <- st.fork_evidence + 1;
                if not (Gossip.verify_fork ~service_pub ev) then
                  fail st "fork evidence for epoch %d does not self-verify"
                    epoch)
        | _ -> fail st "equivocation requested for unsealed epoch %d" epoch)
  in
  let do_appends () =
    for _ = 1 to scenario.appends_per_tick do
      let payload = Det_rng.bytes rng 24 in
      let clues = [ Printf.sprintf "k%d" (Det_rng.int rng 64) ] in
      (* the reference is the never-faulted run: it receives everything *)
      ignore
        (Sharded_ledger.append reference ~member:ref_member ~priv:ref_priv
           ~clues payload);
      match Shard_supervisor.append supervisor ~member ~priv ~clues payload with
      | Ok _ -> st.appends <- st.appends + 1
      | Error u ->
          (* liveness: a quarantined target degrades into a typed
             rejection, never a hang or a raw exception *)
          st.rejected <- st.rejected + 1;
          (match u.Shard_supervisor.shard_status with
          | Shard_supervisor.Quarantined _ | Shard_supervisor.Repairing
          | Shard_supervisor.Suspect _ ->
              ()
          | Shard_supervisor.Healthy ->
              fail st "append rejected by a shard reported healthy")
      | exception e ->
          fail st "append raised %s (liveness violation)"
            (Printexc.to_string e)
    done
  in
  let spot_verify (sealed : Super_root.sealed) =
    (* verification keeps working in degraded mode: prove + verify one
       journal on every live shard of the epoch, against the epoch's
       super digest; a perturbed digest must refuse (safety) *)
    let super = Super_root.commitment sealed in
    Array.iteri
      (fun i presence ->
        match presence with
        | Super_root.Carried -> ()
        | Super_root.Sealed ->
            let size = sealed.Super_root.shard_sizes.(i) in
            if size > 0 then begin
              match Sharded_ledger.prove subject ~shard:i ~jsn:(size - 1) with
              | Error msg -> fail st "prove on live shard %d refused: %s" i msg
              | Ok proof ->
                  st.spot_verifications <- st.spot_verifications + 1;
                  if not (Sharded_ledger.verify_proof subject ~super proof)
                  then fail st "valid proof refused on shard %d" i;
                  let wrong =
                    Hash.combine super (Hash.digest_string "wrong-super")
                  in
                  if Sharded_ledger.verify_proof subject ~super:wrong proof
                  then
                    fail st "proof accepted under a wrong super digest (shard %d)"
                      i
            end)
      sealed.Super_root.presence
  in
  let seal_round () =
    barrier [ subject; reference ];
    (match Sharded_ledger.seal_epoch reference with
    | Ok _ -> ()
    | Error msg -> fail st "reference (never-faulted) seal refused: %s" msg);
    match Shard_supervisor.seal_epoch supervisor with
    | Error msg ->
        if Shard_supervisor.quarantined supervisor <> [] then
          fail st "degraded seal refused with live shards: %s" msg
        else fail st "seal refused on a healthy fleet: %s" msg
    | Ok sealed ->
        if Super_root.full sealed then st.full_epochs <- st.full_epochs + 1
        else st.degraded_epochs <- st.degraded_epochs + 1;
        (match Sharded_ledger.announce subject with
        | None -> fail st "sealed epoch has no announcement"
        | Some ann -> (
            (match Gossip.observe peer_a ann with
            | Gossip.Fresh | Gossip.Confirmed -> ()
            | Gossip.Forked _ ->
                (* only the scripted equivocation may fork *)
                ()
            | Gossip.Rejected msg -> fail st "honest announcement rejected: %s" msg);
            match Gossip.observe peer_b ann with
            | Gossip.Rejected msg -> fail st "honest announcement rejected: %s" msg
            | _ -> ()));
        spot_verify sealed
  in
  let statuses () =
    Array.init scenario.shards (fun i -> Shard_supervisor.status supervisor i)
  in
  let total_ticks = scenario.ticks + scenario.settle_ticks in
  for tick = 0 to total_ticks - 1 do
    if tick = scenario.ticks then
      (* entering the settle phase: the outage window is over *)
      Faulty_transport.set_partitioned faulty false;
    List.iter
      (fun (at, ev) -> if at = tick then apply_event tick ev)
      scenario.schedule;
    (* one simulated tick of wall time, then the cross-fleet barrier *)
    Clock.advance (Sharded_ledger.fleet_clock subject)
      (if tick < scenario.ticks then 100_000L else 2_500_000L);
    barrier [ subject; reference ];
    do_appends ();
    let before = statuses () in
    Shard_supervisor.tick supervisor;
    Array.iteri
      (fun i prev ->
        match (prev, Shard_supervisor.status supervisor i) with
        | ( (Shard_supervisor.Quarantined _ | Shard_supervisor.Repairing),
            Shard_supervisor.Healthy ) ->
            st.repairs <- st.repairs + 1;
            killed.(i) <- false
        | _ -> ())
      before;
    if (tick + 1) mod scenario.seal_every = 0 then seal_round ()
  done;
  (* convergence: after settling, the repaired fleet must be
     indistinguishable from the run that never faulted *)
  let healthy = Shard_supervisor.quarantined supervisor = [] in
  if not healthy then
    fail st "shards still quarantined after settle: %s"
      (String.concat ","
         (List.map string_of_int (Shard_supervisor.quarantined supervisor)));
  let shards_equal = ref healthy in
  if healthy then
    for i = 0 to scenario.shards - 1 do
      let s = Sharded_ledger.shard subject i in
      let r = Sharded_ledger.shard reference i in
      if Ledger.size s <> Ledger.size r then begin
        shards_equal := false;
        fail st "shard %d: subject has %d journals, reference %d" i
          (Ledger.size s) (Ledger.size r)
      end
      else if not (Hash.equal (Ledger.commitment s) (Ledger.commitment r))
      then begin
        shards_equal := false;
        fail st "shard %d: commitment diverges from never-faulted run" i
      end
    done;
  let final_equal =
    healthy && !shards_equal
    &&
    begin
      barrier [ subject; reference ];
      match
        ( Shard_supervisor.seal_epoch supervisor,
          Sharded_ledger.seal_epoch reference )
      with
      | Ok s, Ok r ->
          st.full_epochs <- st.full_epochs + 1;
          let ok =
            Super_root.full s
            && Hash.equal (Super_root.commitment s) (Super_root.commitment r)
          in
          if not ok then
            fail st "final epochs diverge (subject %s, super %s vs %s)"
              (if Super_root.full s then "full" else "degraded")
              (Hash.short_hex (Super_root.commitment s))
              (Hash.short_hex (Super_root.commitment r));
          ok
      | Error msg, _ ->
          fail st "final subject seal refused: %s" msg;
          false
      | _, Error msg ->
          fail st "final reference seal refused: %s" msg;
          false
    end
  in
  {
    scenario = scenario.name;
    seed = scenario.seed;
    appends = st.appends;
    rejected = st.rejected;
    degraded_epochs = st.degraded_epochs;
    full_epochs = st.full_epochs;
    repairs = st.repairs;
    spot_verifications = st.spot_verifications;
    fork_evidence = st.fork_evidence;
    converged = final_equal;
    failures = List.rev st.failures_rev;
  }

(* --- the builtin matrix ------------------------------------------------------ *)

let builtin_matrix ?(seed = 42) () =
  [
    {
      name = "kill-mid-epoch";
      seed;
      shards = 3;
      ticks = 8;
      settle_ticks = 4;
      appends_per_tick = 6;
      seal_every = 2;
      schedule = [ (3, Kill_shard 1) ];
    };
    {
      name = "kill-torn-checkpoint";
      seed = seed + 1;
      shards = 3;
      ticks = 8;
      settle_ticks = 4;
      appends_per_tick = 6;
      seal_every = 2;
      schedule = [ (3, Kill_shard 2); (3, Tear_checkpoint 2) ];
    };
    {
      name = "partition-then-heal";
      seed = seed + 2;
      shards = 3;
      ticks = 10;
      settle_ticks = 4;
      appends_per_tick = 4;
      seal_every = 2;
      schedule = [ (2, Partition); (3, Kill_shard 0); (8, Heal_partition) ];
    };
    {
      name = "equivocating-service";
      seed = seed + 3;
      shards = 2;
      ticks = 6;
      settle_ticks = 2;
      appends_per_tick = 4;
      seal_every = 2;
      schedule = [ (4, Equivocate { epoch = 0 }) ];
    };
  ]

let run_matrix ?seed () = List.map run (builtin_matrix ?seed ())
