(** Deterministic storage fault injection.

    A fault plan is a seeded, reproducible schedule of damage against the
    files of a snapshot directory ({!Ledger.save} output, replica staging,
    or stream-store logs): single bit flips (media rot), tail truncations
    (crash mid-write / torn page) and zeroed ranges (trim gone wrong).
    Because the plan derives entirely from its {!Det_rng} seed and the
    sorted directory listing, every chaos run replays byte-identically —
    a failing seed is a bug report.

    The acceptance contract exercised by the chaos suite: after applying
    any plan, a subsequent {!Ledger.load_verbose} either {e recovers}
    (torn tail: intact prefix replayed and reported) or {e refuses
    loudly} (corrupt record: first bad jsn named).  No plan may ever
    yield a silently-wrong ledger. *)

type kind =
  | Bit_flip of { offset : int; mask : int }
  | Truncate_tail of { drop : int }
  | Zero_range of { offset : int; len : int }
  | Torn_frame of { frame : int; within : int }
      (** crash inside a batched flush: the file is cut [within] bytes
          into its [frame]-th CRC frame, so every earlier frame is
          durable and the chosen one is half-written *)

type fault = { file : string; kind : kind }

type t

val seed : t -> int
val faults : t -> fault list
val fault_to_string : fault -> string
val to_string : t -> string

val plan :
  seed:int ->
  ?bit_flips:int ->
  ?truncations:int ->
  ?zero_ranges:int ->
  ?torn_frames:int ->
  ?only:string list ->
  dir:string ->
  unit ->
  t
(** Draw the requested number of faults against the (non-empty, regular)
    files of [dir]; [only] restricts the candidate files by name.
    Offsets, masks and lengths all come from the seeded rng.  A
    [torn_frames] draw against a file with no intact CRC frames is
    silently skipped (there is no frame to tear). *)

val apply : t -> dir:string -> unit
(** Inflict every fault on the files under [dir]. *)

val apply_fault : dir:string -> fault -> unit
