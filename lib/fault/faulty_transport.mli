(** Deterministic lossy transport.

    Wraps a {!Ledger_core.Transport.t} byte channel and misbehaves with
    configurable probabilities: drops (raising
    {!Ledger_core.Transport.Timeout}), duplicate deliveries of the
    request, response bit-garbling, response reordering (a stale response
    is handed back while the fresh one is held), and delays charged
    against the simulated {!Ledger_storage.Clock}.  All randomness comes
    from the caller's {!Ledger_bench_util.Det_rng}, so a (seed, call
    sequence) pair replays the same fault schedule exactly. *)

type config = {
  drop_prob : float;
  dup_prob : float;
  garble_prob : float;
  reorder_prob : float;
  delay_prob : float;
  delay_ms : float;  (** mean delay; each hit is scaled by 0.5–1.5x *)
}

val none : config
(** All probabilities zero: a faithful pass-through. *)

val lossy :
  ?drop:float ->
  ?dup:float ->
  ?garble:float ->
  ?reorder:float ->
  ?delay:float ->
  ?delay_ms:float ->
  unit ->
  config
(** A moderately hostile network: 5% drops, 1% dups, 1% garbles,
    1% reorders, 5% delays of ~400ms by default. *)

type stats = {
  mutable calls : int;
  mutable drops : int;
  mutable dups : int;
  mutable garbles : int;
  mutable reorders : int;
  mutable delays : int;
}

val stats_to_string : stats -> string

type t

val create :
  rng:Ledger_bench_util.Det_rng.t ->
  config:config ->
  ?latency:Ledger_storage.Latency_model.t ->
  clock:Ledger_storage.Clock.t ->
  Ledger_core.Transport.t ->
  t

val stats : t -> stats

val set_partitioned : t -> bool -> unit
(** Hard partition switch: while on, every call raises
    {!Ledger_core.Transport.Timeout} without consuming any probabilistic
    fate draws — healing resumes the seeded fault schedule exactly where
    it left off.  The chaos orchestrator's partition primitive. *)

val partitioned : t -> bool

val backoff_rng : t -> unit -> float
(** A jitter draw in [0,1) over the {e same} seeded RNG that drives the
    fault schedule — pass as [backoff_rng] to
    {!Ledger_core.Transport.request} so one seed replays faults and
    retry timing together. *)

val transport : t -> Ledger_core.Transport.t
(** The faulty channel. Each call draws its full fate (drop, dup, delay,
    garble, reorder) from the rng up front, charges [latency] and any
    delay to the clock, then forwards to the wrapped transport. *)
