open Ledger_storage
open Ledger_bench_util

type kind =
  | Bit_flip of { offset : int; mask : int }
  | Truncate_tail of { drop : int }
  | Zero_range of { offset : int; len : int }
  | Torn_frame of { frame : int; within : int }

type fault = { file : string; kind : kind }

type t = { seed : int; faults : fault list }

let seed t = t.seed
let faults t = t.faults

let kind_to_string = function
  | Bit_flip { offset; mask } ->
      Printf.sprintf "bit-flip @%d mask=0x%02x" offset mask
  | Truncate_tail { drop } -> Printf.sprintf "truncate tail -%d bytes" drop
  | Zero_range { offset; len } -> Printf.sprintf "zero [%d,%d)" offset (offset + len)
  | Torn_frame { frame; within } ->
      Printf.sprintf "torn frame #%d (+%d bytes kept)" frame within

let fault_to_string f = Printf.sprintf "%s: %s" f.file (kind_to_string f.kind)

let to_string t =
  Printf.sprintf "fault plan (seed %d):\n%s" t.seed
    (String.concat "\n" (List.map (fun f -> "  " ^ fault_to_string f) t.faults))

(* Candidate files, sorted for determinism; only regular non-empty files
   qualify (a fault needs bytes to damage). *)
let targets ?only ~dir () =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.filter_map (fun file ->
         let path = Filename.concat dir file in
         if not (Sys.is_directory path) then begin
           let size =
             let ic = open_in_bin path in
             let n = in_channel_length ic in
             close_in ic;
             n
           in
           let wanted =
             match only with None -> true | Some names -> List.mem file names
           in
           if wanted && size > 0 then Some (file, size) else None
         end
         else None)

(* (start, length) of every intact CRC frame of a {!Framing} log, in file
   order — the cut points a torn-frame fault chooses between. *)
let frame_spans path =
  let ic = open_in_bin path in
  let spans = ref [] in
  (try
     let continue = ref true in
     while !continue do
       let start = pos_in ic in
       match Framing.read ic with
       | Framing.Record _ -> spans := (start, pos_in ic - start) :: !spans
       | Framing.End | Framing.Torn _ | Framing.Corrupt _ -> continue := false
     done
   with e ->
     close_in_noerr ic;
     raise e);
  close_in ic;
  List.rev !spans

let plan ~seed ?(bit_flips = 0) ?(truncations = 0) ?(zero_ranges = 0)
    ?(torn_frames = 0) ?only ~dir () =
  let rng = Det_rng.create ~seed in
  let targets = targets ?only ~dir () in
  if targets = [] then { seed; faults = [] }
  else begin
    let pick_target () = Det_rng.pick rng (Array.of_list targets) in
    let faults = ref [] in
    for _ = 1 to bit_flips do
      let file, size = pick_target () in
      let offset = Det_rng.int rng size in
      let mask = 1 lsl Det_rng.int rng 8 in
      faults := { file; kind = Bit_flip { offset; mask } } :: !faults
    done;
    for _ = 1 to truncations do
      let file, size = pick_target () in
      (* chop somewhere inside the last records: between 1 byte and a
         quarter of the file *)
      let drop = 1 + Det_rng.int rng (max 1 (size / 4)) in
      faults := { file; kind = Truncate_tail { drop } } :: !faults
    done;
    for _ = 1 to zero_ranges do
      let file, size = pick_target () in
      let offset = Det_rng.int rng size in
      let len = 1 + Det_rng.int rng (min 64 (size - offset)) in
      faults := { file; kind = Zero_range { offset; len } } :: !faults
    done;
    for _ = 1 to torn_frames do
      (* crash inside a batched flush: everything before the chosen frame
         is durable, the frame itself is half-written *)
      let file, _ = pick_target () in
      match frame_spans (Filename.concat dir file) with
      | [] -> () (* not a framed log; no frame to tear *)
      | spans ->
          let frame = Det_rng.int rng (List.length spans) in
          let _, len = List.nth spans frame in
          let within = 1 + Det_rng.int rng (max 1 (len - 1)) in
          faults := { file; kind = Torn_frame { frame; within } } :: !faults
    done;
    { seed; faults = List.rev !faults }
  end

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  close_in ic;
  b

let write_file path b =
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let apply_fault ~dir { file; kind } =
  let path = Filename.concat dir file in
  Ledger_obs.Metrics.incr "fault_injected_total";
  (match kind with
  | Bit_flip _ -> Ledger_obs.Metrics.incr "fault_bit_flip_total"
  | Truncate_tail _ -> Ledger_obs.Metrics.incr "fault_truncate_total"
  | Zero_range _ -> Ledger_obs.Metrics.incr "fault_zero_range_total"
  | Torn_frame _ -> Ledger_obs.Metrics.incr "fault_torn_frame_total");
  match kind with
  | Bit_flip { offset; mask } ->
      let b = read_file path in
      if offset < Bytes.length b then begin
        Bytes.set b offset
          (Char.chr (Char.code (Bytes.get b offset) lxor mask));
        write_file path b
      end
  | Truncate_tail { drop } ->
      let b = read_file path in
      let keep = max 0 (Bytes.length b - drop) in
      Framing.truncate_file path ~keep
  | Zero_range { offset; len } ->
      let b = read_file path in
      let len = min len (Bytes.length b - offset) in
      if len > 0 then begin
        Bytes.fill b offset len '\000';
        write_file path b
      end
  | Torn_frame { frame; within } -> (
      match frame_spans path with
      | [] -> ()
      | spans ->
          let start, len = List.nth spans (min frame (List.length spans - 1)) in
          (* keep at least one byte of the frame, never the whole of it *)
          let keep = start + max 1 (min within (len - 1)) in
          Framing.truncate_file path ~keep)

let apply t ~dir = List.iter (apply_fault ~dir) t.faults
