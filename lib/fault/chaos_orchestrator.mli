(** Scripted chaos: deterministic fault scenarios against a supervised
    fleet, judged on liveness, safety and convergence.

    Each {!scenario} drives a {e subject} fleet (behind a
    {!Ledger_shard.Shard_supervisor}) and a {e reference} fleet — same
    config, same name-derived keys, never faulted — in lockstep: the
    orchestrator injects the scheduled events (kill a shard's store,
    tear its checkpoint, partition the repair transport, equivocate an
    epoch announcement), appends the same workload to both, and acts as
    the cross-fleet clock barrier so healthy shards commit
    byte-identical journals.  The reference doubles as the supervisor's
    repair source, so a repaired shard is pulled back to exactly the
    never-faulted history.

    The verdict, per scenario:

    - {b liveness} — degraded operations succeed: appends to dead shards
      fail with a typed rejection (never a hang or raw exception),
      degraded seals commit with the outage verifiably carried, and
      proofs on live shards keep verifying;
    - {b safety} — no wrong verdict, ever: valid proofs verify, proofs
      against a perturbed super digest refuse, honest announcements are
      accepted and scripted equivocation always yields self-verifying
      {!Ledger_shard.Gossip.fork_evidence};
    - {b convergence} — after the settle phase the repaired fleet is
      indistinguishable from the reference: every shard byte-identical
      (size and commitment) and a final full epoch sealing to the same
      super-root commitment.

    Everything derives from the scenario seed ({!Ledger_bench_util.Det_rng},
    {!Fault_plan}, {!Faulty_transport}); a failing (scenario, seed) pair
    is a reproducible bug report. *)

type event =
  | Kill_shard of int
      (** [Stream_store.Unsafe.kill] the shard's store and tell the
          supervisor (probe latency already proven elsewhere) *)
  | Tear_checkpoint of int
      (** damage the shard's checkpoint dir with a seeded {!Fault_plan}
          (torn frame + truncation) — forces salvage to refuse or fall
          back to replica resync *)
  | Partition  (** hard-partition the repair transport *)
  | Heal_partition
  | Equivocate of { epoch : int }
      (** the service mints a second signed announcement for a sealed
          epoch; the gossip mesh must fold it into fork evidence *)

val event_to_string : event -> string

type scenario = {
  name : string;
  seed : int;
  shards : int;
  ticks : int;  (** scheduled phase: events fire, faults are live *)
  settle_ticks : int;
      (** healing phase: partitions lift, backoffs expire, repairs land *)
  appends_per_tick : int;
  seal_every : int;  (** epoch cadence, in ticks *)
  schedule : (int * event) list;  (** (tick, event), applied in order *)
}

type report = {
  scenario : string;
  seed : int;
  appends : int;  (** appends accepted by the subject *)
  rejected : int;  (** typed unavailable rejections (liveness, not loss) *)
  degraded_epochs : int;
  full_epochs : int;
  repairs : int;  (** quarantined shards returned to [Healthy] *)
  spot_verifications : int;  (** proofs checked against epoch digests *)
  fork_evidence : int;
  converged : bool;
  failures : string list;  (** assertion violations; empty on a clean run *)
}

val passed : report -> bool
(** [converged] and no failures. *)

val report_to_string : report -> string

val run : scenario -> report

val builtin_matrix : ?seed:int -> unit -> scenario list
(** The four-scenario acceptance matrix: kill mid-epoch, kill with a
    torn checkpoint (salvage must fall back to resync), kill under a
    partitioned repair transport (repairs blocked until heal), and an
    equivocating service.  [seed] (default 42) offsets every scenario's
    RNG, fault plan and transport schedule. *)

val run_matrix : ?seed:int -> unit -> report list
