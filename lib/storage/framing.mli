(** CRC-32-checked record framing for on-disk logs.

    Every durable log in the system — stream-store segments, ledger
    snapshot files, replica staging files — shares one frame format:

    {v "LDBR"  len:u32be  payload  crc32(len ++ payload):u32be v}

    so a single reader can classify damage precisely.  The distinction
    between a {e torn} record (file ends mid-record: a crash during
    append; truncating to the last boundary is sound recovery) and a
    {e corrupt} record (complete but failing its checksum or magic:
    tampering or media rot; must be surfaced, never silently dropped)
    drives every recovery policy above this module. *)

type read_result =
  | Record of bytes  (** next record, checksum verified *)
  | Torn of { offset : int; dropped_bytes : int }
      (** file ends mid-record; [offset] is the record's start — the safe
          truncation point *)
  | Corrupt of { offset : int }
      (** complete record with bad magic or checksum at [offset] *)
  | End  (** clean EOF at a record boundary *)

val write : out_channel -> bytes -> unit
(** Append one framed record. *)

val read : in_channel -> read_result
(** Read the next framed record; never raises on damaged input. *)

val truncate_file : string -> keep:int -> unit
(** Truncate the file at [keep] bytes — used to discard a torn tail after
    {!read} reported it. *)

val max_record_len : int
(** Frames claiming a longer payload are classified [Corrupt] (a flipped
    length bit would otherwise masquerade as a torn tail). *)
