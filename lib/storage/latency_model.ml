type t = {
  disk_seek_us : float;
  disk_read_us_per_kb : float;
  net_rtt_us : float;
  cloud_rtt_us : float;
}

let default =
  { disk_seek_us = 100.; disk_read_us_per_kb = 4.; net_rtt_us = 200.;
    cloud_rtt_us = 20_000. }

let cloud_service =
  { disk_seek_us = 100.; disk_read_us_per_kb = 4.; net_rtt_us = 200.;
    cloud_rtt_us = 30_000. }

let free =
  { disk_seek_us = 0.; disk_read_us_per_kb = 0.; net_rtt_us = 0.;
    cloud_rtt_us = 0. }

let charge clock us = if us > 0. then Clock.advance clock (Int64.of_float us)

(* Metered variant: each charge point feeds a histogram (count = number of
   charges, sum = total simulated µs) so a run's simulated-time budget can
   be broken down by medium.  The observe call is a no-op when recording
   is disabled. *)
let charge_metered metric clock us =
  charge clock us;
  Ledger_obs.Metrics.observe metric us

let charge_seek t clock = charge_metered "sim_disk_us" clock t.disk_seek_us

let charge_read t clock ~bytes =
  charge_metered "sim_disk_us" clock
    (t.disk_seek_us +. (t.disk_read_us_per_kb *. (float_of_int bytes /. 1024.)))

let charge_net t clock = charge_metered "sim_net_us" clock t.net_rtt_us
let charge_cloud t clock = charge_metered "sim_cloud_us" clock t.cloud_rtt_us
