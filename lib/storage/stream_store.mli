(** Append-only stream storage.

    LedgerDB "implements a stream file system … to manage journals"
    (paper §II-C).  A store holds named streams; each stream is an
    append-only sequence of variable-length records addressed by a dense
    record index.  Records are never overwritten; the only mutation is
    {!erase}, which supports the purge/occult reorganization utility by
    blanking a record's payload while keeping its slot (so indices remain
    stable and verification protocols can observe the erasure).

    The implementation keeps data in memory in segment buffers (4 KiB
    pages) and can persist to a directory for durability.  On disk every
    record is CRC-32 framed ({!Framing}), so {!recover} can reopen a
    directory after a crash, classify the damage (torn tail vs corrupt
    record), truncate back to the last intact record and report exactly
    how far the log was recovered.  Reads optionally charge a
    {!Latency_model.t} so higher layers can simulate I/O cost. *)

type t
(** A stream store. *)

type stream
(** A handle to one named stream. *)

(** {1 Read errors}

    The storage layer never raises bare [Invalid_argument]/[Not_found]:
    callers on the latency-charged path get a typed error they can match
    on (or a dedicated exception carrying the same payload). *)

type read_error =
  | Out_of_range of { stream : string; index : int; length : int }
  | Erased of { stream : string; index : int }
      (** the record's payload was blanked by {!erase} (occult/purge) *)

exception Read_error of read_error

val read_error_to_string : read_error -> string

val create : ?dir:string -> unit -> t
(** In-memory store; with [dir], {!persist} writes each stream to
    [dir/<stream>.log] so content survives the process. *)

val healthy : t -> bool
(** [false] once {!Unsafe.kill} has been applied; higher layers probe
    this before committing work that must not be torn across stores
    (e.g. an epoch super-root seal over many shards). *)

(** Chaos hooks for the fault-injection suite. *)
module Unsafe : sig
  val kill : t -> unit
  (** Simulate a dead storage node: every subsequent append/read/persist
      on the store (or on any of its stream handles) raises [Sys_error],
      and {!healthy} reports [false].  Irreversible for the lifetime of
      the store. *)
end

val stream : t -> string -> stream
(** Get or create the named stream. *)

val stream_name : stream -> string

val append : stream -> bytes -> int
(** Append a record, returning its index (0-based, dense). *)

val append_many : stream -> bytes list -> int
(** Append a whole batch of records in one storage operation, returning
    the index of the first (the pre-batch {!length} when the list is
    empty).  Equivalent to sequential {!append}s record-for-record, but
    counted as a single batch by the [storage_batch_appends_total]
    metric. *)

val length : stream -> int
(** Number of records ever appended (erased records still count). *)

val read : ?latency:Latency_model.t * Clock.t -> stream -> int -> bytes
(** [read stream i] returns record [i].
    @raise Read_error when [i] is out of range or the record was erased. *)

val read_result :
  ?latency:Latency_model.t * Clock.t -> stream -> int ->
  (bytes, read_error) result
(** Non-raising form of {!read}. *)

val read_opt : ?latency:Latency_model.t * Clock.t -> stream -> int -> bytes option
(** Like {!read} but [None] for erased records.
    @raise Read_error when [i] is out of range. *)

val is_erased : stream -> int -> bool

(** {1 Pinned reads}

    A {!pinned} handle captures the stream's current record prefix so
    other domains can read it without synchronizing against the writer:
    appends land beyond the pinned count, and capacity resizes /
    {!compact} swap in fresh arrays, leaving the capture intact.  Record
    objects are shared, so {!erase} remains visible through a pin —
    occulted/purged payloads cannot be resurrected from an old capture.
    Pinned reads never charge a latency model. *)

type pinned

val pin : stream -> pinned
(** Capture the stream's current length as an immutable read prefix. *)

val pinned_length : pinned -> int

val read_pinned : pinned -> int -> bytes option
(** Like {!read_opt} against the pinned prefix: [None] for erased
    records.  @raise Read_error when the index is outside the pinned
    range; raises [Sys_error] if the owning store was killed. *)

val erase : stream -> int -> unit
(** Blank record [i]'s payload (idempotent).  Its index remains occupied. *)

val iter : stream -> (int -> bytes -> unit) -> unit
(** Iterate over non-erased records in index order. *)

val total_bytes : stream -> int
(** Live payload bytes (erased records contribute zero). *)

val page_count : stream -> int
(** Number of 4 KiB pages occupied by live payload — the unit in which the
    latency model accounts sequential reads. *)

val persist : t -> unit
(** Flush all streams to the backing directory (no-op without [dir]).
    Each log is written to a temp file and renamed into place, and every
    record carries a CRC-32 frame. *)

(** {1 Crash recovery} *)

type damage =
  | Intact  (** the whole log replayed cleanly *)
  | Torn_tail  (** file ended mid-record: crash during append *)
  | Corrupt_record
      (** a complete record failed its checksum / magic / sequence —
          tampering or media rot, not a clean crash *)

type recovery = {
  stream : string;
  recovered_upto : int;
      (** records restored; the first damaged record (if any) would have
          had this index *)
  damage : damage;
  dropped_bytes : int;  (** bytes discarded after the last intact record *)
}

val damage_to_string : damage -> string

val recover : dir:string -> unit -> t * recovery list
(** Reopen a persisted store.  Every [<stream>.log] in [dir] is replayed
    up to its last intact record; a damaged tail is truncated off the
    file so subsequent persists start from a sound prefix.  The report
    (one entry per stream, sorted by name) says how far each stream
    recovered and what kind of damage stopped it.  Callers that must
    distinguish recoverable crashes from tampering match on {!damage}:
    [Torn_tail] is safe to continue from, [Corrupt_record] demands a
    higher-level integrity check (e.g. {!Ledger.load}'s re-derivation)
    before the data is trusted.
    @raise Invalid_argument if [dir] does not exist. *)

val compact : stream -> (int -> int -> unit) -> int
(** Rewrite the stream dropping erased slots; calls the remap function
    with [(old_index, new_index)] for every surviving record and returns
    the number of slots reclaimed.  Indices are re-densified, so callers
    must update any stored addresses via the remap callback. *)

val live_records : stream -> int
(** Records that still hold a payload. *)
