(* Length-prefixed, CRC-checked record framing shared by every on-disk
   log in the system (stream-store segments, ledger snapshots, replica
   staging files).

   Record layout:   "LDBR"  len:u32be  payload  crc:u32be
   where crc = CRC-32 over (len:u32be ++ payload).

   A reader distinguishes three failure shapes, because recovery policy
   differs per shape:
   - [Torn]: the file ends in the middle of a record — the classic
     crash-during-append.  Safe to truncate back to the last boundary.
   - [Corrupt]: a complete record whose magic or checksum does not match —
     evidence of tampering or media rot, never of a clean crash.
   - [End]: clean EOF at a record boundary. *)

let magic = "LDBR"
let max_record_len = 1 lsl 30

type read_result =
  | Record of bytes
  | Torn of { offset : int; dropped_bytes : int }
  | Corrupt of { offset : int }
  | End

let u32_to_be v =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((v lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (v land 0xFF));
  b

let be_to_u32 b =
  (Char.code (Bytes.get b 0) lsl 24)
  lor (Char.code (Bytes.get b 1) lsl 16)
  lor (Char.code (Bytes.get b 2) lsl 8)
  lor Char.code (Bytes.get b 3)

let crc32_to_be c = u32_to_be (Int32.to_int c land 0xFFFFFFFF)

let write oc payload =
  let len_be = u32_to_be (Bytes.length payload) in
  let crc = Crc32.update (Crc32.bytes len_be) payload ~pos:0 ~len:(Bytes.length payload) in
  output_string oc magic;
  output_bytes oc len_be;
  output_bytes oc payload;
  output_bytes oc (crc32_to_be crc)

(* Read exactly [n] bytes or return how many were available. *)
let read_exactly ic n =
  let b = Bytes.create n in
  let got = ref 0 in
  (try
     while !got < n do
       let r = input ic b !got (n - !got) in
       if r = 0 then raise Exit;
       got := !got + r
     done
   with Exit | End_of_file -> ());
  if !got = n then Ok b else Error !got

let read ic =
  let offset = pos_in ic in
  let file_len = in_channel_length ic in
  let torn () = Torn { offset; dropped_bytes = file_len - offset } in
  match read_exactly ic 4 with
  | Error 0 -> End
  | Error _ -> torn ()
  | Ok m when Bytes.to_string m <> magic -> Corrupt { offset }
  | Ok _ -> (
      match read_exactly ic 4 with
      | Error _ -> torn ()
      | Ok len_be ->
          let len = be_to_u32 len_be in
          if len > max_record_len then Corrupt { offset }
          else (
            match read_exactly ic len with
            | Error _ -> torn ()
            | Ok payload -> (
                match read_exactly ic 4 with
                | Error _ -> torn ()
                | Ok crc_be ->
                    let crc =
                      Crc32.update (Crc32.bytes len_be) payload ~pos:0
                        ~len:(Bytes.length payload)
                    in
                    if Bytes.equal (crc32_to_be crc) crc_be then Record payload
                    else Corrupt { offset })))

let truncate_file path ~keep =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () -> Unix.ftruncate fd keep)
