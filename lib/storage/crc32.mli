(** CRC-32 (IEEE 802.3) checksums for on-disk record framing.

    Torn writes and silent media corruption must be {e detectable} before
    any byte reaches a codec: a checksum mismatch is the storage layer's
    first line of defence, cheaper and earlier than the cryptographic
    re-derivation that {!Ledger.load} performs on top. *)

val bytes : bytes -> int32
(** Checksum of a whole byte buffer. *)

val string : string -> int32

val update : int32 -> bytes -> pos:int -> len:int -> int32
(** Incremental form: [update crc b ~pos ~len] extends [crc] with a
    slice, so framed records can checksum header and payload without
    concatenating them. *)
