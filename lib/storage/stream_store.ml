let page_size = 4096

type record = { mutable payload : bytes option }

type stream = {
  name : string;
  mutable records : record array;
  mutable count : int;
  mutable live_bytes : int;
  killed : bool ref;  (* shared with the owning store, see {!Unsafe.kill} *)
}

type t = {
  dir : string option;
  streams : (string, stream) Hashtbl.t;
  killed : bool ref;
}

type read_error =
  | Out_of_range of { stream : string; index : int; length : int }
  | Erased of { stream : string; index : int }

exception Read_error of read_error

let read_error_to_string = function
  | Out_of_range { stream; index; length } ->
      Printf.sprintf "stream %s: index %d out of range [0,%d)" stream index
        length
  | Erased { stream; index } ->
      Printf.sprintf "stream %s: record %d was erased" stream index

let () =
  Printexc.register_printer (function
    | Read_error e -> Some ("Stream_store.Read_error: " ^ read_error_to_string e)
    | _ -> None)

let create ?dir () =
  (match dir with
  | Some d when not (Sys.file_exists d) -> Sys.mkdir d 0o755
  | Some _ | None -> ());
  { dir; streams = Hashtbl.create 16; killed = ref false }

let healthy t = not !(t.killed)

let check_alive killed =
  if !killed then raise (Sys_error "stream store killed")

let stream_alive (s : stream) = check_alive s.killed

module Unsafe = struct
  let kill t =
    t.killed := true;
    Ledger_obs.Metrics.incr "storage_killed_total"
end

let stream t name =
  check_alive t.killed;
  match Hashtbl.find_opt t.streams name with
  | Some s -> s
  | None ->
      let s = { name; records = Array.make 64 { payload = None }; count = 0;
                live_bytes = 0; killed = t.killed } in
      Hashtbl.replace t.streams name s;
      s

let stream_name s = s.name

let ensure_capacity s =
  if s.count >= Array.length s.records then begin
    let bigger = Array.make (2 * Array.length s.records) { payload = None } in
    Array.blit s.records 0 bigger 0 s.count;
    s.records <- bigger
  end

let append s payload =
  stream_alive s;
  ensure_capacity s;
  let i = s.count in
  s.records.(i) <- { payload = Some (Bytes.copy payload) };
  s.count <- s.count + 1;
  s.live_bytes <- s.live_bytes + Bytes.length payload;
  Ledger_obs.Metrics.incr "storage_appends_total";
  Ledger_obs.Metrics.observe_int "storage_record_bytes" (Bytes.length payload);
  i

let append_many s payloads =
  stream_alive s;
  let first = s.count in
  List.iter
    (fun payload ->
      ensure_capacity s;
      s.records.(s.count) <- { payload = Some (Bytes.copy payload) };
      s.count <- s.count + 1;
      s.live_bytes <- s.live_bytes + Bytes.length payload;
      Ledger_obs.Metrics.incr "storage_appends_total";
      Ledger_obs.Metrics.observe_int "storage_record_bytes"
        (Bytes.length payload))
    payloads;
  Ledger_obs.Metrics.incr "storage_batch_appends_total";
  first

let length s = s.count

let check_range s i =
  if i < 0 || i >= s.count then
    raise (Read_error (Out_of_range { stream = s.name; index = i; length = s.count }))

let charge latency bytes =
  Ledger_obs.Metrics.incr "storage_reads_total";
  Ledger_obs.Metrics.observe_int "storage_read_bytes" bytes;
  match latency with
  | None -> ()
  | Some (model, clock) -> Latency_model.charge_read model clock ~bytes

let read_result ?latency s i =
  stream_alive s;
  if i < 0 || i >= s.count then
    Error (Out_of_range { stream = s.name; index = i; length = s.count })
  else
    match s.records.(i).payload with
    | None -> Error (Erased { stream = s.name; index = i })
    | Some p ->
        charge latency (Bytes.length p);
        Ok (Bytes.copy p)

let read_opt ?latency s i =
  stream_alive s;
  check_range s i;
  match s.records.(i).payload with
  | None -> None
  | Some p ->
      charge latency (Bytes.length p);
      Some (Bytes.copy p)

let read ?latency s i =
  match read_result ?latency s i with
  | Ok p -> p
  | Error e -> raise (Read_error e)

let is_erased s i =
  check_range s i;
  s.records.(i).payload = None

(* Pinned read handle: capture (records array, count) so readers on
   other domains index a stable prefix while the writer keeps appending
   (appends land at indices >= the pinned count; resizes and {!compact}
   swap in fresh arrays, leaving the captured one intact).  Record
   objects are shared, so {!erase} is visible through a pin — erased
   payloads cannot be resurrected from an old capture.  Pinned reads
   never charge a latency model (there is no writer clock to charge from
   a concurrent reader). *)
type pinned = {
  p_name : string;
  p_records : record array;
  p_count : int;
  p_killed : bool ref;
}

let pin s =
  stream_alive s;
  { p_name = s.name; p_records = s.records; p_count = s.count;
    p_killed = s.killed }

let pinned_length p = p.p_count

let read_pinned p i =
  check_alive p.p_killed;
  if i < 0 || i >= p.p_count then
    raise
      (Read_error
         (Out_of_range { stream = p.p_name; index = i; length = p.p_count }));
  match p.p_records.(i).payload with
  | None -> None
  | Some bytes ->
      charge None (Bytes.length bytes);
      Some (Bytes.copy bytes)

let erase s i =
  check_range s i;
  (match s.records.(i).payload with
  | Some p -> s.live_bytes <- s.live_bytes - Bytes.length p
  | None -> ());
  Ledger_obs.Metrics.incr "storage_erases_total";
  s.records.(i).payload <- None

let iter s f =
  for i = 0 to s.count - 1 do
    match s.records.(i).payload with
    | Some p -> f i (Bytes.copy p)
    | None -> ()
  done

let total_bytes s = s.live_bytes
let page_count s = (s.live_bytes + page_size - 1) / page_size

(* --- durability -------------------------------------------------------------

   Each stream persists to [dir/<name>.log] as a sequence of
   {!Framing}-checked records; the frame payload is

     index:u32be  live:u8  record-bytes

   Erased records keep their slot (live = 0, empty body) so indices stay
   dense across a reopen.  The CRC framing is what makes {!recover}
   possible: a crash mid-write leaves a torn final frame that can be
   detected and truncated instead of poisoning the whole log. *)

let frame_record i payload =
  let body, live = match payload with Some p -> (p, 1) | None -> (Bytes.empty, 0) in
  let frame = Bytes.create (5 + Bytes.length body) in
  Bytes.set frame 0 (Char.chr ((i lsr 24) land 0xFF));
  Bytes.set frame 1 (Char.chr ((i lsr 16) land 0xFF));
  Bytes.set frame 2 (Char.chr ((i lsr 8) land 0xFF));
  Bytes.set frame 3 (Char.chr (i land 0xFF));
  Bytes.set frame 4 (Char.chr live);
  Bytes.blit body 0 frame 5 (Bytes.length body);
  frame

let unframe_record frame =
  if Bytes.length frame < 5 then None
  else
    let i =
      (Char.code (Bytes.get frame 0) lsl 24)
      lor (Char.code (Bytes.get frame 1) lsl 16)
      lor (Char.code (Bytes.get frame 2) lsl 8)
      lor Char.code (Bytes.get frame 3)
    in
    let live = Char.code (Bytes.get frame 4) in
    let body = Bytes.sub frame 5 (Bytes.length frame - 5) in
    Some (i, (if live = 1 then Some body else None))

let log_path dir name = Filename.concat dir (name ^ ".log")

let persist t =
  check_alive t.killed;
  match t.dir with
  | None -> ()
  | Some dir ->
      Hashtbl.iter
        (fun name s ->
          let path = log_path dir name in
          let tmp = path ^ ".tmp" in
          let oc = open_out_bin tmp in
          (try
             for i = 0 to s.count - 1 do
               Framing.write oc (frame_record i s.records.(i).payload)
             done;
             close_out oc
           with e ->
             close_out_noerr oc;
             raise e);
          Sys.rename tmp path)
        t.streams

type damage = Intact | Torn_tail | Corrupt_record

type recovery = {
  stream : string;
  recovered_upto : int;
  damage : damage;
  dropped_bytes : int;
}

let damage_to_string = function
  | Intact -> "intact"
  | Torn_tail -> "torn tail"
  | Corrupt_record -> "corrupt record"

let recover ~dir () =
  if not (Sys.file_exists dir) then
    invalid_arg ("Stream_store.recover: no such directory " ^ dir);
  let t = create ~dir () in
  let reports = ref [] in
  Array.iter
    (fun file ->
      if Filename.check_suffix file ".log" then begin
        let name = Filename.chop_suffix file ".log" in
        let path = Filename.concat dir file in
        let s = stream t name in
        let ic = open_in_bin path in
        let damage = ref Intact in
        let dropped = ref 0 in
        let stop_at = ref None in
        (try
           let continue = ref true in
           while !continue do
             let before = pos_in ic in
             match Framing.read ic with
             | Framing.End -> continue := false
             | Framing.Record frame -> (
                 match unframe_record frame with
                 | Some (i, payload) when i = s.count ->
                     ensure_capacity s;
                     s.records.(s.count) <- { payload };
                     s.count <- s.count + 1;
                     (match payload with
                     | Some p -> s.live_bytes <- s.live_bytes + Bytes.length p
                     | None -> ())
                 | Some _ | None ->
                     (* sequence break inside a checksummed record: not a
                        crash artefact, a corruption *)
                     damage := Corrupt_record;
                     dropped := in_channel_length ic - before;
                     stop_at := Some before;
                     continue := false)
             | Framing.Torn { offset; dropped_bytes } ->
                 damage := Torn_tail;
                 dropped := dropped_bytes;
                 stop_at := Some offset;
                 continue := false
             | Framing.Corrupt { offset } ->
                 damage := Corrupt_record;
                 dropped := in_channel_length ic - offset;
                 stop_at := Some offset;
                 continue := false
           done
         with e ->
           close_in_noerr ic;
           raise e);
        close_in ic;
        (* truncate the log back to the last intact record so a subsequent
           append/persist cycle starts from a sound prefix *)
        (match !stop_at with
        | Some keep -> Framing.truncate_file path ~keep
        | None -> ());
        Ledger_obs.Metrics.incr "storage_recovered_streams_total";
        Ledger_obs.Metrics.observe_int "storage_recovered_records" s.count;
        (match !damage with
        | Intact -> ()
        | Torn_tail -> Ledger_obs.Metrics.incr "storage_torn_tails_total"
        | Corrupt_record ->
            Ledger_obs.Metrics.incr "storage_corrupt_records_total");
        reports :=
          { stream = name; recovered_upto = s.count; damage = !damage;
            dropped_bytes = !dropped }
          :: !reports
      end)
    (Sys.readdir dir);
  (t, List.sort (fun a b -> compare a.stream b.stream) !reports)

let live_records s =
  let n = ref 0 in
  for i = 0 to s.count - 1 do
    if s.records.(i).payload <> None then incr n
  done;
  !n

let compact s remap =
  let keep = live_records s in
  let fresh = Array.make (max 64 keep) { payload = None } in
  let next = ref 0 in
  for i = 0 to s.count - 1 do
    match s.records.(i).payload with
    | Some _ ->
        fresh.(!next) <- s.records.(i);
        remap i !next;
        incr next
    | None -> ()
  done;
  let reclaimed = s.count - keep in
  s.records <- fresh;
  s.count <- keep;
  reclaimed
