(* Standard CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320),
   table-driven.  Pure OCaml so the storage layer stays dependency-free. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let update crc b ~pos ~len =
  let table = Lazy.force table in
  let c = ref (Int32.logxor crc 0xFFFFFFFFl) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (Bytes.get b i)))) 0xFFl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let bytes b = update 0l b ~pos:0 ~len:(Bytes.length b)
let string s = bytes (Bytes.unsafe_of_string s)
