type fe = Uint256.t

let p =
  Uint256.of_hex
    "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f"

let n =
  Uint256.of_hex
    "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141"

let gx =
  Uint256.of_hex
    "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"

let gy =
  Uint256.of_hex
    "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8"

let p_minus_2 =
  Uint256.of_hex
    "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2d"

(* --- field arithmetic with fast pseudo-Mersenne reduction ------------- *)

let limb_mask = 0xFFFF
let limb_bits = 16

(* p = 2^256 - c with c = 2^32 + 977: fold the high half down repeatedly. *)
let reduce_wide w =
  let significant a =
    let rec go i = if i < 0 then 0 else if a.(i) <> 0 then i + 1 else go (i - 1) in
    go (Array.length a - 1)
  in
  let current = ref (Array.copy w) in
  let len = ref (significant !current) in
  while !len > 16 do
    let a = !current in
    let hi_len = !len - 16 in
    (* acc = lo + (hi << 32) + 977 * hi *)
    let acc = Array.make (max 16 (hi_len + 3) + 1) 0 in
    Array.blit a 0 acc 0 16;
    (* add hi * 977 at offset 0 *)
    let carry = ref 0 in
    for i = 0 to hi_len - 1 do
      let s = acc.(i) + (a.(16 + i) * 977) + !carry in
      acc.(i) <- s land limb_mask;
      carry := s lsr limb_bits
    done;
    let k = ref hi_len in
    while !carry <> 0 do
      let s = acc.(!k) + !carry in
      acc.(!k) <- s land limb_mask;
      carry := s lsr limb_bits;
      incr k
    done;
    (* add hi << 32 (two limbs) *)
    carry := 0;
    for i = 0 to hi_len - 1 do
      let s = acc.(i + 2) + a.(16 + i) + !carry in
      acc.(i + 2) <- s land limb_mask;
      carry := s lsr limb_bits
    done;
    let k = ref (hi_len + 2) in
    while !carry <> 0 do
      let s = acc.(!k) + !carry in
      acc.(!k) <- s land limb_mask;
      carry := s lsr limb_bits;
      incr k
    done;
    current := acc;
    len := significant acc
  done;
  let r = Array.make 16 0 in
  Array.blit !current 0 r 0 (min 16 (Array.length !current));
  let v = ref (Uint256.of_limbs r) in
  while Uint256.compare !v p >= 0 do
    v := fst (Uint256.sub !v p)
  done;
  !v

let fe_add a b = Uint256.add_mod a b p
let fe_sub a b = Uint256.sub_mod a b p
let fe_mul a b = reduce_wide (Uint256.mul_wide a b)
let fe_sqr a = fe_mul a a

let fe_pow b e =
  let result = ref Uint256.one and base = ref b in
  let nb = Uint256.num_bits e in
  for i = 0 to nb - 1 do
    if Uint256.bit e i then result := fe_mul !result !base;
    base := fe_sqr !base
  done;
  !result

let fe_inv a =
  if Uint256.is_zero a then invalid_arg "Secp256k1.fe_inv: zero";
  fe_pow a p_minus_2

let fe_of_int = Uint256.of_int
let fe_dbl a = fe_add a a

(* --- Jacobian points --------------------------------------------------- *)

type point = { x : fe; y : fe; z : fe }

let infinity = { x = Uint256.one; y = Uint256.one; z = Uint256.zero }
let is_infinity pt = Uint256.is_zero pt.z
let of_affine x y = { x; y; z = Uint256.one }
let generator = of_affine gx gy

let is_on_curve x y =
  if Uint256.compare x p >= 0 || Uint256.compare y p >= 0 then false
  else
    let lhs = fe_sqr y in
    let rhs = fe_add (fe_mul (fe_sqr x) x) (fe_of_int 7) in
    Uint256.equal lhs rhs

let to_affine pt =
  if is_infinity pt then None
  else begin
    let zinv = fe_inv pt.z in
    let zinv2 = fe_sqr zinv in
    let x = fe_mul pt.x zinv2 in
    let y = fe_mul pt.y (fe_mul zinv2 zinv) in
    Some (x, y)
  end

let negate pt =
  if is_infinity pt then pt
  else { pt with y = Uint256.sub_mod Uint256.zero pt.y p }

let double pt =
  if is_infinity pt || Uint256.is_zero pt.y then infinity
  else begin
    let a = fe_sqr pt.x in
    let b = fe_sqr pt.y in
    let c = fe_sqr b in
    let d =
      let t = fe_sqr (fe_add pt.x b) in
      fe_dbl (fe_sub (fe_sub t a) c)
    in
    let e = fe_add (fe_dbl a) a in
    let f = fe_sqr e in
    let x3 = fe_sub f (fe_dbl d) in
    let y3 =
      let c8 = fe_dbl (fe_dbl (fe_dbl c)) in
      fe_sub (fe_mul e (fe_sub d x3)) c8
    in
    let z3 = fe_dbl (fe_mul pt.y pt.z) in
    { x = x3; y = y3; z = z3 }
  end

let add p1 p2 =
  if is_infinity p1 then p2
  else if is_infinity p2 then p1
  else begin
    let z1z1 = fe_sqr p1.z and z2z2 = fe_sqr p2.z in
    let u1 = fe_mul p1.x z2z2 and u2 = fe_mul p2.x z1z1 in
    let s1 = fe_mul p1.y (fe_mul z2z2 p2.z) in
    let s2 = fe_mul p2.y (fe_mul z1z1 p1.z) in
    let h = fe_sub u2 u1 and r = fe_sub s2 s1 in
    if Uint256.is_zero h then
      if Uint256.is_zero r then double p1 else infinity
    else begin
      let h2 = fe_sqr h in
      let h3 = fe_mul h h2 in
      let u1h2 = fe_mul u1 h2 in
      let x3 = fe_sub (fe_sub (fe_sqr r) h3) (fe_dbl u1h2) in
      let y3 = fe_sub (fe_mul r (fe_sub u1h2 x3)) (fe_mul s1 h3) in
      let z3 = fe_mul h (fe_mul p1.z p2.z) in
      { x = x3; y = y3; z = z3 }
    end
  end

let scalar_mul k pt =
  let nb = Uint256.num_bits k in
  let acc = ref infinity in
  for i = nb - 1 downto 0 do
    acc := double !acc;
    if Uint256.bit k i then acc := add !acc pt
  done;
  !acc

let double_scalar_mul a pa b pb =
  let sum = add pa pb in
  let nb = max (Uint256.num_bits a) (Uint256.num_bits b) in
  let acc = ref infinity in
  for i = nb - 1 downto 0 do
    acc := double !acc;
    (match (Uint256.bit a i, Uint256.bit b i) with
    | true, true -> acc := add !acc sum
    | true, false -> acc := add !acc pa
    | false, true -> acc := add !acc pb
    | false, false -> ())
  done;
  !acc

let equal p1 p2 =
  match (to_affine p1, to_affine p2) with
  | None, None -> true
  | Some (x1, y1), Some (x2, y2) -> Uint256.equal x1 x2 && Uint256.equal y1 y2
  | None, Some _ | Some _, None -> false
