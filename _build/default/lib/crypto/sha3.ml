(* SHA3-256: Keccak-f[1600] on Int64 lanes, rate 136 bytes. *)

let rounds = 24

let round_constants =
  [| 0x0000000000000001L; 0x0000000000008082L; 0x800000000000808aL;
     0x8000000080008000L; 0x000000000000808bL; 0x0000000080000001L;
     0x8000000080008081L; 0x8000000000008009L; 0x000000000000008aL;
     0x0000000000000088L; 0x0000000080008009L; 0x000000008000000aL;
     0x000000008000808bL; 0x800000000000008bL; 0x8000000000008089L;
     0x8000000000008003L; 0x8000000000008002L; 0x8000000000000080L;
     0x000000000000800aL; 0x800000008000000aL; 0x8000000080008081L;
     0x8000000000008080L; 0x0000000080000001L; 0x8000000080008008L |]

let rotation_offsets =
  (* r[x][y] indexed as x + 5*y *)
  [| 0; 1; 62; 28; 27; 36; 44; 6; 55; 20; 3; 10; 43; 25; 39; 41; 45; 15; 21;
     8; 18; 2; 61; 56; 14 |]

let rotl64 x n =
  if n = 0 then x
  else Int64.logor (Int64.shift_left x n) (Int64.shift_right_logical x (64 - n))

let keccak_f state =
  let c = Array.make 5 0L and d = Array.make 5 0L in
  let b = Array.make 25 0L in
  for round = 0 to rounds - 1 do
    (* theta *)
    for x = 0 to 4 do
      c.(x) <-
        Int64.logxor state.(x)
          (Int64.logxor state.(x + 5)
             (Int64.logxor state.(x + 10)
                (Int64.logxor state.(x + 15) state.(x + 20))))
    done;
    for x = 0 to 4 do
      d.(x) <- Int64.logxor c.((x + 4) mod 5) (rotl64 c.((x + 1) mod 5) 1)
    done;
    for x = 0 to 4 do
      for y = 0 to 4 do
        state.(x + (5 * y)) <- Int64.logxor state.(x + (5 * y)) d.(x)
      done
    done;
    (* rho + pi *)
    for x = 0 to 4 do
      for y = 0 to 4 do
        let nx = y and ny = ((2 * x) + (3 * y)) mod 5 in
        b.(nx + (5 * ny)) <-
          rotl64 state.(x + (5 * y)) rotation_offsets.(x + (5 * y))
      done
    done;
    (* chi *)
    for x = 0 to 4 do
      for y = 0 to 4 do
        state.(x + (5 * y)) <-
          Int64.logxor
            b.(x + (5 * y))
            (Int64.logand
               (Int64.lognot b.(((x + 1) mod 5) + (5 * y)))
               b.(((x + 2) mod 5) + (5 * y)))
      done
    done;
    (* iota *)
    state.(0) <- Int64.logxor state.(0) round_constants.(round)
  done

let rate = 136 (* bytes, for 256-bit output *)

let digest_bytes msg =
  let state = Array.make 25 0L in
  let len = Bytes.length msg in
  (* padded message: msg || 0x06 || 0x00* || 0x80 (last byte ored) *)
  let padded_len = (len / rate * rate) + rate in
  let padded = Bytes.make padded_len '\000' in
  Bytes.blit msg 0 padded 0 len;
  Bytes.set padded len '\x06';
  Bytes.set padded (padded_len - 1)
    (Char.chr (Char.code (Bytes.get padded (padded_len - 1)) lor 0x80));
  let absorb_block off =
    for i = 0 to (rate / 8) - 1 do
      let lane = ref 0L in
      for j = 7 downto 0 do
        lane :=
          Int64.logor (Int64.shift_left !lane 8)
            (Int64.of_int (Char.code (Bytes.get padded (off + (i * 8) + j))))
      done;
      state.(i) <- Int64.logxor state.(i) !lane
    done;
    keccak_f state
  in
  let off = ref 0 in
  while !off < padded_len do
    absorb_block !off;
    off := !off + rate
  done;
  let out = Bytes.create 32 in
  for i = 0 to 3 do
    let lane = state.(i) in
    for j = 0 to 7 do
      Bytes.set out
        ((i * 8) + j)
        (Char.chr
           (Int64.to_int (Int64.shift_right_logical lane (j * 8)) land 0xFF))
    done
  done;
  out

let digest_string s = digest_bytes (Bytes.unsafe_of_string s)
