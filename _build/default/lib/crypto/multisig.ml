type entry = { signer : Ecdsa.public_key; signature : Ecdsa.signature }
type t = { digest : Hash.t; entries : entry list }

let empty digest = { digest; entries = [] }
let digest t = t.digest

let remove_signer entries id =
  List.filter (fun e -> not (Hash.equal (Ecdsa.public_key_id e.signer) id)) entries

let add t ~signer priv =
  let signature = Ecdsa.sign priv t.digest in
  let entries = remove_signer t.entries (Ecdsa.public_key_id signer) in
  { t with entries = { signer; signature } :: entries }

let add_signature t ~signer signature =
  let entries = remove_signer t.entries (Ecdsa.public_key_id signer) in
  { t with entries = { signer; signature } :: entries }

let signer_ids t = List.map (fun e -> Ecdsa.public_key_id e.signer) t.entries

let verify_all t =
  List.for_all (fun e -> Ecdsa.verify e.signer t.digest e.signature) t.entries

let covers t ~required =
  verify_all t
  && List.for_all
       (fun pk ->
         let id = Ecdsa.public_key_id pk in
         List.exists
           (fun e -> Hash.equal (Ecdsa.public_key_id e.signer) id)
           t.entries)
       required

let cardinal t = List.length t.entries
