(** Fixed-width 256-bit unsigned integers.

    Values are represented as sixteen 16-bit limbs stored little-endian in an
    [int array].  All arithmetic is modulo [2^256] unless stated otherwise.
    The representation is chosen so that limb products (32 bits) and column
    sums (at most 36 bits) always fit in OCaml's 63-bit native [int], keeping
    the implementation portable and allocation-light.

    This module is the substrate for the secp256k1 field and scalar
    arithmetic used by {!Ecdsa}. *)

type t
(** A 256-bit unsigned integer.  Values are immutable from the outside:
    every exported operation returns a fresh value. *)

(** {1 Constants and conversions} *)

val zero : t
val one : t

val of_int : int -> t
(** [of_int n] converts a non-negative OCaml integer.
    @raise Invalid_argument if [n < 0]. *)

val to_int_opt : t -> int option
(** [to_int_opt x] is [Some n] when [x] fits in a non-negative OCaml [int]. *)

val of_bytes_be : bytes -> t
(** [of_bytes_be b] interprets up to 32 big-endian bytes.
    @raise Invalid_argument if [Bytes.length b > 32]. *)

val to_bytes_be : t -> bytes
(** 32-byte big-endian encoding. *)

val of_hex : string -> t
(** [of_hex s] parses a hexadecimal string (no "0x" prefix, at most 64
    digits).  @raise Invalid_argument on bad input. *)

val to_hex : t -> string
(** 64-digit lowercase hexadecimal encoding. *)

(** {1 Predicates and comparison} *)

val is_zero : t -> bool
val is_odd : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val num_bits : t -> int
(** Position of the highest set bit plus one; [num_bits zero = 0]. *)

val bit : t -> int -> bool
(** [bit x i] is the [i]-th bit (little-endian), [false] for [i >= 256]. *)

(** {1 Arithmetic modulo 2^256} *)

val add : t -> t -> t * bool
(** Sum and carry-out. *)

val sub : t -> t -> t * bool
(** Difference and borrow-out ([true] when the result wrapped). *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val mul_wide : t -> t -> int array
(** Full 512-bit product as 32 little-endian 16-bit limbs. *)

(** {1 Modular arithmetic (arbitrary modulus)} *)

val div_mod : t -> t -> t * t
(** [div_mod a m] is [(a / m, a mod m)].
    @raise Division_by_zero if [m] is zero. *)

val mod_wide : int array -> t -> t
(** [mod_wide w m] reduces a 512-bit value (32 limbs as produced by
    {!mul_wide}) modulo [m]. *)

val add_mod : t -> t -> t -> t
(** [add_mod a b m] is [(a + b) mod m]; requires [a, b < m]. *)

val sub_mod : t -> t -> t -> t
(** [sub_mod a b m] is [(a - b) mod m]; requires [a, b < m]. *)

val mul_mod : t -> t -> t -> t
(** [mul_mod a b m] is [(a * b) mod m]. *)

val pow_mod : t -> t -> t -> t
(** [pow_mod b e m] is [b^e mod m] by square-and-multiply. *)

val inv_mod : t -> t -> t
(** [inv_mod x m] is the multiplicative inverse of [x] modulo an odd
    modulus [m], computed with the binary extended-GCD algorithm.
    @raise Invalid_argument if [m] is even, [x] is zero, or not coprime. *)

(** {1 Internal access (used by Secp256k1's specialised reduction)} *)

val limbs : t -> int array
(** The underlying limb array.  Treat as read-only. *)

val of_limbs : int array -> t
(** Build from 16 normalised 16-bit limbs.  The array is copied. *)

val pp : Format.formatter -> t -> unit
