(** Multi-signature sets over a single digest.

    Purge journals require signatures from the DBA and every affected member
    (Prerequisite 1); occult journals require DBA and regulator signatures
    (Prerequisite 2).  A [Multisig.t] carries the set of (signer id,
    signature) pairs over one digest and can be checked against a required
    signer set. *)

type t

val empty : Hash.t -> t
(** [empty digest] is a signature set over [digest] with no signatures. *)

val digest : t -> Hash.t

val add : t -> signer:Ecdsa.public_key -> Ecdsa.private_key -> t
(** Sign the digest with [signer]'s private key and record it.
    Re-signing by the same member replaces the previous signature. *)

val add_signature : t -> signer:Ecdsa.public_key -> Ecdsa.signature -> t
(** Record an externally produced signature (not validated here). *)

val signer_ids : t -> Hash.t list

val verify_all : t -> bool
(** Every recorded signature is valid for the digest. *)

val covers : t -> required:Ecdsa.public_key list -> bool
(** [covers t ~required] holds when every required member has a valid
    signature in [t] (extra signatures are allowed). *)

val cardinal : t -> int
