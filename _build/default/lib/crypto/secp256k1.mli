(** The secp256k1 elliptic curve: y² = x³ + 7 over F_p.

    Field arithmetic uses the pseudo-Mersenne structure of
    p = 2²⁵⁶ − 2³² − 977 for fast reduction; points are manipulated in
    Jacobian coordinates to avoid per-operation field inversions.  This is
    the curve substrate beneath {!Ecdsa}. *)

type fe = Uint256.t
(** A field element, canonical (< p). *)

type point
(** A curve point in Jacobian coordinates (the point at infinity is
    representable). *)

val p : Uint256.t
(** The field prime. *)

val n : Uint256.t
(** The group order. *)

val generator : point

val infinity : point
val is_infinity : point -> bool

val of_affine : fe -> fe -> point
(** [of_affine x y] builds a point; the caller asserts it is on the curve
    (use {!is_on_curve} to check untrusted input). *)

val to_affine : point -> (fe * fe) option
(** [None] for the point at infinity. *)

val is_on_curve : fe -> fe -> bool

val double : point -> point
val add : point -> point -> point
val negate : point -> point

val scalar_mul : Uint256.t -> point -> point
(** [scalar_mul k pt] by MSB-first double-and-add. *)

val double_scalar_mul : Uint256.t -> point -> Uint256.t -> point -> point
(** [double_scalar_mul a pt_a b pt_b] computes [a·pt_a + b·pt_b] with a
    single shared doubling chain (Shamir's trick) — the hot path of ECDSA
    verification. *)

val equal : point -> point -> bool
(** Structural equality of the represented affine points. *)

(** {1 Field helpers (exposed for tests)} *)

val fe_add : fe -> fe -> fe
val fe_sub : fe -> fe -> fe
val fe_mul : fe -> fe -> fe
val fe_sqr : fe -> fe
val fe_inv : fe -> fe
