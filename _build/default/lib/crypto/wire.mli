(** Shared binary encoding primitives for wire and storage formats.

    Fixed-width big-endian framing with total (exception-free at the API
    boundary) decoding: readers raise the private {!Corrupt} exception
    internally and {!decode} converts it to [None].  Used by the journal
    codec, the proof codecs, and the client/proxy protocol. *)

type writer
(** An append-only encoder. *)

val writer : ?initial:int -> unit -> writer
val w_u8 : writer -> int -> unit
val w_int : writer -> int -> unit
(** 8-byte big-endian two's complement. *)

val w_int64 : writer -> int64 -> unit
val w_bytes : writer -> bytes -> unit
(** Length-prefixed. *)

val w_string : writer -> string -> unit
val w_raw : writer -> bytes -> unit
(** No length prefix (fixed-size fields). *)

val w_hash : writer -> Hash.t -> unit
val w_bool : writer -> bool -> unit
val w_list : writer -> ('a -> unit) -> 'a list -> unit
(** Count-prefixed. *)

val w_option : writer -> ('a -> unit) -> 'a option -> unit
val contents : writer -> bytes

type reader

exception Corrupt

val reader : bytes -> reader
val r_u8 : reader -> int
val r_int : reader -> int
val r_int64 : reader -> int64
val r_bytes : reader -> bytes
val r_string : reader -> string
val r_raw : reader -> int -> bytes
val r_hash : reader -> Hash.t
val r_bool : reader -> bool
val r_list : ?max:int -> reader -> (unit -> 'a) -> 'a list
val r_option : reader -> (unit -> 'a) -> 'a option
val at_end : reader -> bool

val decode : bytes -> (reader -> 'a) -> 'a option
(** Run a decoder; [None] on {!Corrupt}, truncation, or trailing bytes. *)
