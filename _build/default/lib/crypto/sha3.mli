(** Pure-OCaml SHA3-256 (FIPS 202, Keccak-f[1600] with the 0x06 domain
    padding).  LedgerDB uses SHA-3 to scatter clue keys uniformly over the
    Merkle Patricia Trie address space (§IV-B2 of the paper). *)

val digest_bytes : bytes -> bytes
(** One-shot 32-byte SHA3-256 digest. *)

val digest_string : string -> bytes
