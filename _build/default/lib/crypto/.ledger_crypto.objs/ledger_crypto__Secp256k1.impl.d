lib/crypto/secp256k1.ml: Array Uint256
