lib/crypto/hmac_sha256.ml: Bytes Char Sha256
