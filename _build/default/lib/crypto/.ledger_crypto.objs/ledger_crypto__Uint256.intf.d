lib/crypto/uint256.mli: Format
