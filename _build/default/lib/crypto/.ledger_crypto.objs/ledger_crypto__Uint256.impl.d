lib/crypto/uint256.ml: Array Buffer Bytes Char Format Printf Stdlib String
