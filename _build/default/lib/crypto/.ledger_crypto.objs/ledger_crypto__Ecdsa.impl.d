lib/crypto/ecdsa.ml: Bytes Char Format Hash Hmac_sha256 Secp256k1 Sha256 String Uint256
