lib/crypto/hash.ml: Buffer Bytes Char Format Hashtbl Printf Sha256 Sha3 String
