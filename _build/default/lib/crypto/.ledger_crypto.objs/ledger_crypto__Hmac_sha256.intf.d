lib/crypto/hmac_sha256.mli:
