lib/crypto/multisig.mli: Ecdsa Hash
