lib/crypto/wire.mli: Hash
