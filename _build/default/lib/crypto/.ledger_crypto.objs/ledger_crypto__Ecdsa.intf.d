lib/crypto/ecdsa.mli: Format Hash Uint256
