lib/crypto/sha3.mli:
