lib/crypto/multisig.ml: Ecdsa Hash List
