lib/crypto/wire.ml: Buffer Bytes Char Hash Int64 List
