(** 32-byte digests: the universal currency of the ledger.

    Every journal, tree node, receipt, and proof in this reproduction is
    identified by a [Hash.t].  Digests are SHA-256 by default; {!scatter}
    uses SHA-3 for clue-key scattering as in the paper. *)

type t
(** An immutable 32-byte digest. *)

val of_bytes : bytes -> t
(** @raise Invalid_argument if the buffer is not exactly 32 bytes. *)

val to_bytes : t -> bytes
val of_hex : string -> t
val to_hex : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
(** For use with [Hashtbl]. *)

val zero : t
(** The all-zero digest, used as a placeholder for empty tree slots. *)

val digest_bytes : bytes -> t
(** SHA-256 of a byte buffer. *)

val digest_string : string -> t
(** SHA-256 of a string. *)

val combine : t -> t -> t
(** [combine l r] is the digest of the concatenation [l ∥ r]: the interior
    node rule of every Merkle structure in this library. *)

val combine_tagged : string -> t -> t -> t
(** [combine_tagged tag l r] domain-separates interior-node hashing with a
    tag prefix, preventing cross-structure proof confusion. *)

val scatter : string -> t
(** SHA-3 digest of a clue key (paper §IV-B2): scatters user-chosen clue
    strings uniformly so the MPT stays balanced. *)

val short_hex : t -> string
(** First 8 hex digits, for logs and display. *)

val pp : Format.formatter -> t -> unit
