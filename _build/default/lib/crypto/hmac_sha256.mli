(** HMAC-SHA256 (RFC 2104), used for deterministic ECDSA nonces. *)

val mac : key:bytes -> bytes -> bytes
(** [mac ~key msg] is the 32-byte HMAC-SHA256 tag of [msg] under [key]. *)

val mac_string : key:string -> string -> bytes
