type writer = Buffer.t

let writer ?(initial = 256) () = Buffer.create initial
let w_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let w_int buf v =
  for i = 7 downto 0 do
    Buffer.add_char buf (Char.chr ((v asr (i * 8)) land 0xFF))
  done

let w_int64 buf v =
  for i = 7 downto 0 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (i * 8)) land 0xFF))
  done

let w_raw buf b = Buffer.add_bytes buf b

let w_bytes buf b =
  w_int buf (Bytes.length b);
  Buffer.add_bytes buf b

let w_string buf s = w_bytes buf (Bytes.unsafe_of_string s)
let w_hash buf h = Buffer.add_bytes buf (Hash.to_bytes h)
let w_bool buf b = w_u8 buf (if b then 1 else 0)

let w_list buf f l =
  w_int buf (List.length l);
  List.iter f l

let w_option buf f = function
  | Some v ->
      w_u8 buf 1;
      f v
  | None -> w_u8 buf 0

let contents = Buffer.to_bytes

type reader = { data : bytes; mutable pos : int }

exception Corrupt

let reader data = { data; pos = 0 }
let need r n = if n < 0 || r.pos + n > Bytes.length r.data then raise Corrupt

let r_u8 r =
  need r 1;
  let v = Char.code (Bytes.get r.data r.pos) in
  r.pos <- r.pos + 1;
  v

let r_int r =
  need r 8;
  let v = ref 0 in
  for _ = 1 to 8 do
    v := (!v lsl 8) lor Char.code (Bytes.get r.data r.pos);
    r.pos <- r.pos + 1
  done;
  !v

let r_int64 r =
  need r 8;
  let v = ref 0L in
  for _ = 1 to 8 do
    v :=
      Int64.logor (Int64.shift_left !v 8)
        (Int64.of_int (Char.code (Bytes.get r.data r.pos)));
    r.pos <- r.pos + 1
  done;
  !v

let r_raw r n =
  need r n;
  let b = Bytes.sub r.data r.pos n in
  r.pos <- r.pos + n;
  b

let r_bytes r =
  let len = r_int r in
  if len < 0 || len > 1 lsl 30 then raise Corrupt;
  r_raw r len

let r_string r = Bytes.to_string (r_bytes r)
let r_hash r = Hash.of_bytes (r_raw r 32)

let r_bool r =
  match r_u8 r with 0 -> false | 1 -> true | _ -> raise Corrupt

let r_list ?(max = 1 lsl 24) r f =
  let n = r_int r in
  if n < 0 || n > max then raise Corrupt;
  List.init n (fun _ -> f ())

let r_option r f =
  match r_u8 r with 0 -> None | 1 -> Some (f ()) | _ -> raise Corrupt

let at_end r = r.pos = Bytes.length r.data

let decode data f =
  let r = reader data in
  match f r with
  | v -> if at_end r then Some v else None
  | exception Corrupt -> None
  | exception Invalid_argument _ -> None
