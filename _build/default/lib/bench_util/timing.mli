(** Measurement helpers: wall-clock timing for algorithmic costs and
    simulated-clock deltas for modeled latencies. *)

open Ledger_storage

val wall : (unit -> 'a) -> 'a * float
(** Result and elapsed wall seconds. *)

val wall_throughput : n:int -> (int -> unit) -> float
(** Run [f 0 .. f (n-1)], return operations per wall second. *)

val simulated_ms : Clock.t -> (unit -> 'a) -> 'a * float
(** Result and elapsed {e simulated} milliseconds. *)

val simulated_throughput : Clock.t -> n:int -> (int -> unit) -> float
(** Operations per {e simulated} second (infinity if no time was
    charged). *)

val repeat_median_ms : ?repeats:int -> (unit -> unit) -> float
(** Median wall milliseconds over several runs. *)
