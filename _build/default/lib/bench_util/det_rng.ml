type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Det_rng.int: bound";
  Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int bound))

let bytes t n =
  let b = Bytes.create n in
  let i = ref 0 in
  while !i < n do
    let v = next t in
    let take = min 8 (n - !i) in
    for k = 0 to take - 1 do
      Bytes.set b (!i + k)
        (Char.chr (Int64.to_int (Int64.shift_right_logical v (k * 8)) land 0xFF))
    done;
    i := !i + take
  done;
  b

let pick t arr = arr.(int t (Array.length arr))
