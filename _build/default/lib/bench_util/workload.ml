type journal_workload = { payloads : bytes array; clues : string array }

let notarization ~rng ~n ~payload_size =
  {
    payloads = Array.init n (fun _ -> Det_rng.bytes rng payload_size);
    clues = Array.init n (fun i -> Printf.sprintf "doc-%08d" i);
  }

let lineage ~rng ~clue_count ~min_entries ~max_entries ~payload_size =
  let assignments = ref [] in
  for c = 0 to clue_count - 1 do
    let entries = min_entries + Det_rng.int rng (max_entries - min_entries + 1) in
    for _ = 1 to entries do
      assignments := Printf.sprintf "clue-%06d" c :: !assignments
    done
  done;
  (* shuffle so clue entries interleave as they would in production *)
  let arr = Array.of_list !assignments in
  for i = Array.length arr - 1 downto 1 do
    let j = Det_rng.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  {
    payloads = Array.init (Array.length arr) (fun _ -> Det_rng.bytes rng payload_size);
    clues = arr;
  }

let size_label n =
  if n >= 1 lsl 30 then Printf.sprintf "%dG" (n lsr 30)
  else if n >= 1 lsl 20 then Printf.sprintf "%dM" (n lsr 20)
  else if n >= 1 lsl 10 then Printf.sprintf "%dK" (n lsr 10)
  else string_of_int n
