(** Paper-style table and series printers for the bench harness. *)

val print_title : string -> unit
(** Underlined section header. *)

val print_table : header:string list -> string list list -> unit
(** Column-aligned text table. *)

val print_series : title:string -> x_label:string -> y_label:string ->
  (string * float) list -> unit
(** One named series printed as aligned (x, y) rows. *)

val print_multi_series : title:string -> x_label:string ->
  series_labels:string list -> (string * float list) list -> unit
(** Several y-columns per x (e.g. tim vs fam-5..fam-25). *)

val human_rate : float -> string
(** "52.3K", "1.2M" etc. *)

val human_ms : float -> string
