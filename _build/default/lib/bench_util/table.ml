let print_title title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let print_table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let print_row row =
    List.iteri
      (fun c cell ->
        let w = List.nth widths c in
        Printf.printf "%s%s" cell (String.make (w - String.length cell + 2) ' '))
      row;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let print_series ~title ~x_label ~y_label points =
  print_title title;
  print_table ~header:[ x_label; y_label ]
    (List.map (fun (x, y) -> [ x; Printf.sprintf "%.3f" y ]) points)

let print_multi_series ~title ~x_label ~series_labels points =
  print_title title;
  print_table
    ~header:(x_label :: series_labels)
    (List.map
       (fun (x, ys) -> x :: List.map (fun y -> Printf.sprintf "%.2f" y) ys)
       points)

let human_rate r =
  if r >= 1_000_000. then Printf.sprintf "%.2fM" (r /. 1_000_000.)
  else if r >= 1_000. then Printf.sprintf "%.1fK" (r /. 1_000.)
  else Printf.sprintf "%.1f" r

let human_ms ms =
  if ms >= 1000. then Printf.sprintf "%.2fs" (ms /. 1000.)
  else if ms >= 1. then Printf.sprintf "%.2fms" ms
  else Printf.sprintf "%.1fus" (ms *. 1000.)
