lib/bench_util/det_rng.mli:
