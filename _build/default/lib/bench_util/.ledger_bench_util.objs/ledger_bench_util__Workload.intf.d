lib/bench_util/workload.mli: Det_rng
