lib/bench_util/det_rng.ml: Array Bytes Char Int64
