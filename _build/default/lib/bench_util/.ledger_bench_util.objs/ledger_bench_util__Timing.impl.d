lib/bench_util/timing.ml: Clock Int64 Ledger_storage List Unix
