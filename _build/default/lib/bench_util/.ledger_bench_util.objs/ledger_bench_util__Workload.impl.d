lib/bench_util/workload.ml: Array Det_rng Printf
