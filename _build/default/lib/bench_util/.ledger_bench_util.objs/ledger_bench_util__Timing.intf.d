lib/bench_util/timing.mli: Clock Ledger_storage
