lib/bench_util/table.mli:
