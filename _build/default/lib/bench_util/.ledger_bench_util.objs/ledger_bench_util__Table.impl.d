lib/bench_util/table.ml: List Printf String
