(** Deterministic splitmix64 PRNG for reproducible workloads.

    Every benchmark and generated workload seeds one of these, so repeated
    runs produce identical journals, clue assignments and access
    patterns. *)

type t

val create : seed:int -> t
val next : t -> int64
val int : t -> int -> int
(** Uniform in [\[0, bound)].  @raise Invalid_argument if [bound <= 0]. *)

val bytes : t -> int -> bytes
(** Pseudo-random payload of the given size. *)

val pick : t -> 'a array -> 'a
