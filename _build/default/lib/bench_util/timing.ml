open Ledger_storage

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let wall_throughput ~n f =
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    f i
  done;
  let dt = Unix.gettimeofday () -. t0 in
  if dt <= 0. then infinity else float_of_int n /. dt

let simulated_ms clock f =
  let t0 = Clock.now clock in
  let r = f () in
  (r, Clock.ms_of_us (Int64.sub (Clock.now clock) t0))

let simulated_throughput clock ~n f =
  let t0 = Clock.now clock in
  for i = 0 to n - 1 do
    f i
  done;
  let dt_us = Int64.to_float (Int64.sub (Clock.now clock) t0) in
  if dt_us <= 0. then infinity else float_of_int n /. (dt_us /. 1_000_000.)

let repeat_median_ms ?(repeats = 5) f =
  let samples =
    List.init repeats (fun _ ->
        let _, dt = wall f in
        dt *. 1000.)
  in
  let sorted = List.sort compare samples in
  List.nth sorted (repeats / 2)
