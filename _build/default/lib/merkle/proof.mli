(** Merkle proof terms shared by every authenticated structure.

    A {!path} is the classic leaf-to-root audit path.  A {!node_set} is the
    Shrubs-style commitment used before a tree is full: the ordered roots
    of the maximal complete subtrees ("peaks"), leftmost first. *)

open Ledger_crypto

type direction = Left | Right
(** Which side the {e sibling} digest sits on. *)

type step = { dir : direction; digest : Hash.t }

type path = step list
(** Audit path ordered from the leaf upwards. *)

val apply : Hash.t -> path -> Hash.t
(** [apply leaf path] folds the path to the implied root digest. *)

val verify : leaf:Hash.t -> root:Hash.t -> path -> bool

val length : path -> int

type node_set = Hash.t list
(** Ordered peak digests, leftmost (largest subtree) first. *)

val node_set_digest : node_set -> Hash.t
(** Canonical digest of a node-set commitment: hash of the concatenated
    peaks.  This is what gets signed, anchored to the T-Ledger, or stored
    as a CM-Tree1 value. *)

val node_set_equal : node_set -> node_set -> bool

val pp_path : Format.formatter -> path -> unit
