open Ledger_crypto

type t = Forest.t

let build leaves =
  if leaves = [] then invalid_arg "Merkle_tree.build: empty";
  let f = Forest.create () in
  List.iter (fun h -> ignore (Forest.append f h)) leaves;
  f

let root = Forest.bagged_root
let size = Forest.size
let prove = Forest.prove_bagged
let verify ~root ~leaf path = Hash.equal (Proof.apply leaf path) root
