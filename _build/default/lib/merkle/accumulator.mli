(** The transaction-intensive model (tim): a single append-only Merkle
    accumulator over every journal, as in Diem and QLDB (paper §II-A).

    Appends are O(1) amortised; the root and proof length are O(log n) and
    {e grow with the ledger size} — the inefficiency that fam removes.
    This is the principal baseline of Fig. 8. *)

open Ledger_crypto

type t

val create : unit -> t
val append : t -> Hash.t -> int
val size : t -> int
val root : t -> Hash.t
(** @raise Invalid_argument when empty. *)

val leaf : t -> int -> Hash.t

val prove : t -> int -> Proof.path
(** Existence proof of leaf [i] against the current {!root}. *)

val verify : root:Hash.t -> leaf:Hash.t -> Proof.path -> bool

val stored_digests : t -> int
