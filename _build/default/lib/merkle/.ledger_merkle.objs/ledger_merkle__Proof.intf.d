lib/merkle/proof.mli: Format Hash Ledger_crypto
