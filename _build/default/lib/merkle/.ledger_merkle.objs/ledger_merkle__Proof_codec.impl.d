lib/merkle/proof_codec.ml: Fam Ledger_crypto Proof Range_proof Shrubs Wire
