lib/merkle/fam.ml: Array Forest Hash Ledger_crypto List Proof Shrubs
