lib/merkle/proof_codec.mli: Fam Forest Ledger_crypto Proof Range_proof Shrubs Wire
