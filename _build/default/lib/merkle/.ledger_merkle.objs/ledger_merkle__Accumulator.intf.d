lib/merkle/accumulator.mli: Hash Ledger_crypto Proof
