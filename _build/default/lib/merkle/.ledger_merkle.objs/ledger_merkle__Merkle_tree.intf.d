lib/merkle/merkle_tree.mli: Hash Ledger_crypto Proof
