lib/merkle/range_proof.mli: Forest Hash Ledger_crypto Proof
