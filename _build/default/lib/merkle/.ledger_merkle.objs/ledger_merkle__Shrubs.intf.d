lib/merkle/shrubs.mli: Forest Hash Ledger_crypto Proof
