lib/merkle/forest.mli: Hash Ledger_crypto Proof
