lib/merkle/bim.ml: Array Buffer Hash Int64 Ledger_crypto List Merkle_tree Proof
