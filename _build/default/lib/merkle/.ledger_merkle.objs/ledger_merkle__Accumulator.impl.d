lib/merkle/accumulator.ml: Forest Hash Ledger_crypto Proof
