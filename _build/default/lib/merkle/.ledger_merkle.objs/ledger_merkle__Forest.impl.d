lib/merkle/forest.ml: Array Hash Ledger_crypto List Printf Proof
