lib/merkle/bim.mli: Hash Ledger_crypto Proof
