lib/merkle/fam.mli: Forest Hash Ledger_crypto Proof
