lib/merkle/shrubs.ml: Forest Hash Ledger_crypto List Option Proof
