lib/merkle/range_proof.ml: Forest Hash Hashtbl Ledger_crypto List Proof
