lib/merkle/proof.ml: Buffer Format Hash Ledger_crypto List
