lib/merkle/bamt.ml: Forest Hash Ledger_crypto List Proof
