lib/merkle/merkle_tree.ml: Forest Hash Ledger_crypto List Proof
