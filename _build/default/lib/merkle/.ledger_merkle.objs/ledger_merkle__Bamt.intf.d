lib/merkle/bamt.mli: Hash Ledger_crypto Proof
