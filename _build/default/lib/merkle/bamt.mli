(** bAMT — the batched accumulated Merkle tree of the earlier LedgerDB
    paper (VLDB'20), referenced in §III-A1 as having tim-class
    verification cost.

    Transactions fill fixed-size batches; each sealed batch's Merkle root
    becomes a leaf of a single global accumulator.  Compared to fam:
    batch roots are {e equal} leaves (no fractal merge), so the global
    accumulator keeps growing and proof length is O(log(batches)) +
    O(log(batch)) — it decays with ledger size like tim, which is exactly
    why fam replaced it. *)

open Ledger_crypto

type t

val create : batch_size:int -> t
val append : t -> Hash.t -> int
val flush : t -> unit
(** Seal a partial batch. *)

val size : t -> int
val batch_count : t -> int
val root : t -> Hash.t
(** Root over all sealed batches plus the open batch.
    @raise Invalid_argument when empty. *)

type proof = { in_batch : Proof.path; batch_path : Proof.path; open_batch : bool }

val prove : t -> int -> proof
val verify : root:Hash.t -> leaf:Hash.t -> proof -> bool
val stored_digests : t -> int
