open Ledger_crypto

let w_step w { Proof.dir; digest } =
  Wire.w_u8 w (match dir with Proof.Left -> 0 | Proof.Right -> 1);
  Wire.w_hash w digest

let r_step r =
  let dir =
    match Wire.r_u8 r with
    | 0 -> Proof.Left
    | 1 -> Proof.Right
    | _ -> raise Wire.Corrupt
  in
  { Proof.dir; digest = Wire.r_hash r }

let w_path w path = Wire.w_list w (w_step w) path
let r_path r = Wire.r_list ~max:4096 r (fun () -> r_step r)

let w_node_set w peaks = Wire.w_list w (Wire.w_hash w) peaks
let r_node_set r = Wire.r_list ~max:256 r (fun () -> Wire.r_hash r)

let w_shrubs_proof w { Shrubs.path; peak_index; peak_set } =
  w_path w path;
  Wire.w_int w peak_index;
  w_node_set w peak_set

let r_shrubs_proof r =
  let path = r_path r in
  let peak_index = Wire.r_int r in
  let peak_set = r_node_set r in
  { Shrubs.path; peak_index; peak_set }

let w_fam_proof w { Fam.jsn; epoch_paths; peak_index; peak_set } =
  Wire.w_int w jsn;
  Wire.w_list w (w_path w) epoch_paths;
  Wire.w_int w peak_index;
  w_node_set w peak_set

let r_fam_proof r =
  let jsn = Wire.r_int r in
  let epoch_paths = Wire.r_list ~max:4096 r (fun () -> r_path r) in
  let peak_index = Wire.r_int r in
  let peak_set = r_node_set r in
  { Fam.jsn; epoch_paths; peak_index; peak_set }

let w_fam_anchored w = function
  | Fam.Within_sealed { epoch; path } ->
      Wire.w_u8 w 0;
      Wire.w_int w epoch;
      w_path w path
  | Fam.Beyond_anchor proof ->
      Wire.w_u8 w 1;
      w_fam_proof w proof

let r_fam_anchored r =
  match Wire.r_u8 r with
  | 0 ->
      let epoch = Wire.r_int r in
      let path = r_path r in
      Fam.Within_sealed { epoch; path }
  | 1 -> Fam.Beyond_anchor (r_fam_proof r)
  | _ -> raise Wire.Corrupt

let w_range_proof w { Range_proof.size; first; last; support; peak_set } =
  Wire.w_int w size;
  Wire.w_int w first;
  Wire.w_int w last;
  Wire.w_list w
    (fun ((level, index), digest) ->
      Wire.w_int w level;
      Wire.w_int w index;
      Wire.w_hash w digest)
    support;
  w_node_set w peak_set

let r_range_proof r =
  let size = Wire.r_int r in
  let first = Wire.r_int r in
  let last = Wire.r_int r in
  let support =
    Wire.r_list ~max:65536 r (fun () ->
        let level = Wire.r_int r in
        let index = Wire.r_int r in
        let digest = Wire.r_hash r in
        ((level, index), digest))
  in
  let peak_set = r_node_set r in
  { Range_proof.size; first; last; support; peak_set }

let encode f v =
  let w = Wire.writer () in
  f w v;
  Wire.contents w

let encode_fam_proof = encode w_fam_proof
let decode_fam_proof b = Wire.decode b r_fam_proof
let encode_fam_anchored = encode w_fam_anchored
let decode_fam_anchored b = Wire.decode b r_fam_anchored
let encode_range_proof = encode w_range_proof
let decode_range_proof b = Wire.decode b r_range_proof

let w_consistency w proof =
  Wire.w_list w (fun chain -> Wire.w_list w (Wire.w_hash w) chain) proof

let r_consistency r =
  Wire.r_list ~max:64 r (fun () ->
      Wire.r_list ~max:64 r (fun () -> Wire.r_hash r))

let w_fam_extension w = function
  | Fam.Within_epoch { consistency; new_peaks } ->
      Wire.w_u8 w 0;
      w_consistency w consistency;
      w_node_set w new_peaks
  | Fam.Across_epochs { completion; epoch_root; chain; peak_index; peak_set } ->
      Wire.w_u8 w 1;
      w_consistency w completion;
      Wire.w_hash w epoch_root;
      Wire.w_list w (w_path w) chain;
      Wire.w_int w peak_index;
      w_node_set w peak_set

let r_fam_extension r =
  match Wire.r_u8 r with
  | 0 ->
      let consistency = r_consistency r in
      let new_peaks = r_node_set r in
      Fam.Within_epoch { consistency; new_peaks }
  | 1 ->
      let completion = r_consistency r in
      let epoch_root = Wire.r_hash r in
      let chain = Wire.r_list ~max:4096 r (fun () -> r_path r) in
      let peak_index = Wire.r_int r in
      let peak_set = r_node_set r in
      Fam.Across_epochs { completion; epoch_root; chain; peak_index; peak_set }
  | _ -> raise Wire.Corrupt

let encode_fam_extension = encode w_fam_extension
let decode_fam_extension b = Wire.decode b r_fam_extension
