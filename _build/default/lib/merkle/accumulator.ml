open Ledger_crypto

type t = Forest.t

let create = Forest.create
let append = Forest.append
let size = Forest.size
let root = Forest.bagged_root
let leaf = Forest.leaf
let prove = Forest.prove_bagged
let verify ~root ~leaf path = Hash.equal (Proof.apply leaf path) root
let stored_digests = Forest.stored_digests
