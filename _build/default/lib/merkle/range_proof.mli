(** Batch (range) existence proofs over a {!Forest}.

    This implements the set algebra of the paper's clue-oriented
    verification (§IV-C): given destination leaves ℕ₁, the prover ships
    only the support nodes ℕ = ℕ₂ − (ℕ₂ ∩ ℕ₃) — proof-path positions that
    the verifier cannot derive from the leaves it already holds.  The
    verifier reconstructs every peak bottom-up from the known leaves plus
    the support set and compares against the trusted node-set. *)

open Ledger_crypto

type support = ((int * int) * Hash.t) list
(** [(level, index)] ↦ digest, for each shipped interior/cover node. *)

type t = {
  size : int;  (** forest size at proving time *)
  first : int;
  last : int;  (** inclusive leaf range covered *)
  support : support;
  peak_set : Proof.node_set;
}

val prove : Forest.t -> first:int -> last:int -> t
(** @raise Invalid_argument on an empty or out-of-range interval. *)

val support_size : t -> int

val verify : known:(int * Hash.t) list -> t -> bool
(** [known] must supply the digest of {e every} leaf in [first..last]
    (computed by the verifier from retrieved journal payloads).
    Reconstructs the peaks and compares with [peak_set]; the caller is
    responsible for checking [peak_set] against a trusted commitment. *)

val verify_against_commitment : known:(int * Hash.t) list -> commitment:Hash.t -> t -> bool
(** {!verify} plus the node-set digest check. *)
