(** Classic static Merkle tree over a fixed leaf sequence.

    Used for per-block transaction trees in the {!Bim} baseline and the
    Fabric simulator.  Non-power-of-two leaf counts use promote semantics
    (the same ragged-root rule as {!Forest.bagged_root}). *)

open Ledger_crypto

type t

val build : Hash.t list -> t
(** @raise Invalid_argument on an empty list. *)

val root : t -> Hash.t
val size : t -> int
val prove : t -> int -> Proof.path
val verify : root:Hash.t -> leaf:Hash.t -> Proof.path -> bool
