open Ledger_crypto

type t = {
  batch_size : int;
  acc : Forest.t; (* sealed batch roots *)
  mutable sealed : Forest.t list; (* newest first, for in-batch proofs *)
  mutable current : Forest.t;
  mutable size : int;
}

let create ~batch_size =
  if batch_size < 2 then invalid_arg "Bamt.create: batch_size";
  {
    batch_size;
    acc = Forest.create ();
    sealed = [];
    current = Forest.create ();
    size = 0;
  }

let seal t =
  if Forest.size t.current > 0 then begin
    ignore (Forest.append t.acc (Forest.bagged_root t.current));
    t.sealed <- t.current :: t.sealed;
    t.current <- Forest.create ()
  end

let append t h =
  let i = t.size in
  ignore (Forest.append t.current h);
  t.size <- t.size + 1;
  if Forest.size t.current >= t.batch_size then seal t;
  i

let flush = seal
let size t = t.size
let batch_count t = Forest.size t.acc

(* Root: bag of [acc root (if any); open batch root (if any)]. *)
let root t =
  match (Forest.size t.acc > 0, Forest.size t.current > 0) with
  | false, false -> invalid_arg "Bamt.root: empty"
  | true, false -> Forest.bagged_root t.acc
  | false, true -> Forest.bagged_root t.current
  | true, true ->
      Hash.combine (Forest.bagged_root t.acc) (Forest.bagged_root t.current)

type proof = { in_batch : Proof.path; batch_path : Proof.path; open_batch : bool }

let prove t i =
  if i < 0 || i >= t.size then invalid_arg "Bamt.prove: out of range";
  let batch = i / t.batch_size in
  let pos = i mod t.batch_size in
  let sealed_batches = batch_count t in
  if batch < sealed_batches then begin
    let forest = List.nth t.sealed (sealed_batches - 1 - batch) in
    let in_batch = Forest.prove_bagged forest pos in
    let batch_path = Forest.prove_bagged t.acc batch in
    let batch_path =
      if Forest.size t.current > 0 then
        batch_path
        @ [ { Proof.dir = Proof.Right; digest = Forest.bagged_root t.current } ]
      else batch_path
    in
    { in_batch; batch_path; open_batch = false }
  end
  else begin
    let in_batch = Forest.prove_bagged t.current pos in
    let batch_path =
      if Forest.size t.acc > 0 then
        [ { Proof.dir = Proof.Left; digest = Forest.bagged_root t.acc } ]
      else []
    in
    { in_batch; batch_path; open_batch = true }
  end

let verify ~root ~leaf proof =
  let batch_root = Proof.apply leaf proof.in_batch in
  Hash.equal (Proof.apply batch_root proof.batch_path) root

let stored_digests t =
  Forest.stored_digests t.acc
  + Forest.stored_digests t.current
  + List.fold_left (fun a f -> a + Forest.stored_digests f) 0 t.sealed
