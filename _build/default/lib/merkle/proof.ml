open Ledger_crypto

type direction = Left | Right
type step = { dir : direction; digest : Hash.t }
type path = step list

let apply leaf path =
  List.fold_left
    (fun acc { dir; digest } ->
      match dir with
      | Left -> Hash.combine digest acc
      | Right -> Hash.combine acc digest)
    leaf path

let verify ~leaf ~root path = Hash.equal (apply leaf path) root
let length = List.length

type node_set = Hash.t list

let node_set_digest peaks =
  let buf = Buffer.create (32 * List.length peaks) in
  List.iter (fun h -> Buffer.add_bytes buf (Hash.to_bytes h)) peaks;
  Hash.digest_bytes (Buffer.to_bytes buf)

let node_set_equal a b = List.length a = List.length b && List.for_all2 Hash.equal a b

let pp_path fmt path =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       (fun fmt { dir; digest } ->
         Format.fprintf fmt "%s%a"
           (match dir with Left -> "L:" | Right -> "R:")
           Hash.pp digest))
    path
