(** The block-intensive model (bim) — Bitcoin-style linked blocks with
    per-block Merkle trees and SPV verification against a header chain
    (paper §II-A, §III-A1).

    A light client downloads and validates headers once; the header chain
    then acts as the block-oriented trusted anchor (boa), so a transaction
    proof is one in-block Merkle path.  Header storage is O(#blocks) —
    the overhead fam avoids. *)

open Ledger_crypto

type t

type header = {
  height : int;
  prev_hash : Hash.t;
  merkle_root : Hash.t;
  timestamp : int64;
}

val create : block_size:int -> t

val append : t -> ?timestamp:int64 -> Hash.t -> int
(** Append a transaction digest; seals a block automatically every
    [block_size] transactions.  Returns the global transaction index. *)

val flush : t -> unit
(** Seal a partial block, if any. *)

val size : t -> int
val block_count : t -> int
(** Sealed blocks. *)

val header : t -> int -> header
val header_hash : header -> Hash.t
val headers : t -> header list
(** The full header chain (a light client's state). *)

val verify_header_chain : header list -> bool

type proof = { block : int; block_header : header; path : Proof.path }

val prove : t -> int -> proof
(** @raise Invalid_argument if the transaction's block is not yet sealed. *)

val verify : headers:header array -> leaf:Hash.t -> proof -> bool
(** SPV: path must reach the Merkle root of the matching trusted header. *)

val header_bytes : t -> int
(** Bytes a light client must store — the boa space cost. *)
