open Ledger_crypto

type header = {
  height : int;
  prev_hash : Hash.t;
  merkle_root : Hash.t;
  timestamp : int64;
}

type sealed = { hdr : header; tree : Merkle_tree.t }

type t = {
  block_size : int;
  mutable blocks : sealed list; (* newest first *)
  mutable pending : Hash.t list; (* newest first *)
  mutable pending_count : int;
  mutable size : int;
  mutable last_timestamp : int64;
}

let create ~block_size =
  if block_size < 1 then invalid_arg "Bim.create: block_size";
  {
    block_size;
    blocks = [];
    pending = [];
    pending_count = 0;
    size = 0;
    last_timestamp = 0L;
  }

let header_hash h =
  let buf = Buffer.create 80 in
  Buffer.add_string buf (string_of_int h.height);
  Buffer.add_bytes buf (Hash.to_bytes h.prev_hash);
  Buffer.add_bytes buf (Hash.to_bytes h.merkle_root);
  Buffer.add_string buf (Int64.to_string h.timestamp);
  Hash.digest_bytes (Buffer.to_bytes buf)

let seal t =
  if t.pending_count > 0 then begin
    let leaves = List.rev t.pending in
    let tree = Merkle_tree.build leaves in
    let prev_hash =
      match t.blocks with
      | [] -> Hash.zero
      | { hdr; _ } :: _ -> header_hash hdr
    in
    let hdr =
      {
        height = List.length t.blocks;
        prev_hash;
        merkle_root = Merkle_tree.root tree;
        timestamp = t.last_timestamp;
      }
    in
    t.blocks <- { hdr; tree } :: t.blocks;
    t.pending <- [];
    t.pending_count <- 0
  end

let append t ?(timestamp = 0L) h =
  t.pending <- h :: t.pending;
  t.pending_count <- t.pending_count + 1;
  t.last_timestamp <- timestamp;
  let i = t.size in
  t.size <- t.size + 1;
  if t.pending_count >= t.block_size then seal t;
  i

let flush = seal
let size t = t.size
let block_count t = List.length t.blocks

let nth_block t b =
  let n = block_count t in
  if b < 0 || b >= n then invalid_arg "Bim: block out of range";
  List.nth t.blocks (n - 1 - b)

let header t b = (nth_block t b).hdr
let headers t = List.rev_map (fun s -> s.hdr) t.blocks

let verify_header_chain hdrs =
  let rec go prev height = function
    | [] -> true
    | h :: rest ->
        h.height = height
        && Hash.equal h.prev_hash prev
        && go (header_hash h) (height + 1) rest
  in
  match hdrs with [] -> true | _ -> go Hash.zero 0 hdrs

type proof = { block : int; block_header : header; path : Proof.path }

let prove t i =
  if i < 0 || i >= t.size then invalid_arg "Bim.prove: out of range";
  let b = i / t.block_size in
  if b >= block_count t then
    invalid_arg "Bim.prove: transaction's block not yet sealed";
  let { hdr; tree } = nth_block t b in
  { block = b; block_header = hdr; path = Merkle_tree.prove tree (i mod t.block_size) }

let verify ~headers ~leaf { block; block_header; path } =
  block >= 0 && block < Array.length headers
  && header_hash headers.(block) = header_hash block_header
  && Hash.equal (Proof.apply leaf path) block_header.merkle_root

let header_bytes t = block_count t * 80
