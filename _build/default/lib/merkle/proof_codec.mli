(** Binary codecs for every proof object a verifier may receive over the
    wire: audit paths, node sets, Shrubs proofs, fam (chained and
    anchored) proofs, and batch range proofs.

    Writers append into an open {!Ledger_crypto.Wire.writer} so proofs
    compose into larger protocol messages; [decode_*] helpers wrap the
    matching readers totally ([None] on corruption). *)

open Ledger_crypto

val w_path : Wire.writer -> Proof.path -> unit
val r_path : Wire.reader -> Proof.path

val w_node_set : Wire.writer -> Proof.node_set -> unit
val r_node_set : Wire.reader -> Proof.node_set

val w_shrubs_proof : Wire.writer -> Shrubs.proof -> unit
val r_shrubs_proof : Wire.reader -> Shrubs.proof

val w_fam_proof : Wire.writer -> Fam.proof -> unit
val r_fam_proof : Wire.reader -> Fam.proof

val w_fam_anchored : Wire.writer -> Fam.anchored_proof -> unit
val r_fam_anchored : Wire.reader -> Fam.anchored_proof

val w_range_proof : Wire.writer -> Range_proof.t -> unit
val r_range_proof : Wire.reader -> Range_proof.t

val encode_fam_proof : Fam.proof -> bytes
val decode_fam_proof : bytes -> Fam.proof option

val encode_fam_anchored : Fam.anchored_proof -> bytes
val decode_fam_anchored : bytes -> Fam.anchored_proof option

val encode_range_proof : Range_proof.t -> bytes
val decode_range_proof : bytes -> Range_proof.t option

val w_consistency : Wire.writer -> Forest.consistency_proof -> unit
val r_consistency : Wire.reader -> Forest.consistency_proof

val w_fam_extension : Wire.writer -> Fam.extension_proof -> unit
val r_fam_extension : Wire.reader -> Fam.extension_proof

val encode_fam_extension : Fam.extension_proof -> bytes
val decode_fam_extension : bytes -> Fam.extension_proof option
