open Ledger_crypto

type support = ((int * int) * Hash.t) list

type t = {
  size : int;
  first : int;
  last : int;
  support : support;
  peak_set : Proof.node_set;
}

(* Peak decomposition of a forest of [n] leaves: (level, node index,
   starting leaf) triples, leftmost first.  Must mirror Forest's layout. *)
let peak_positions n =
  let rec top_bit b = if 1 lsl (b + 1) > n then b else top_bit (b + 1) in
  let rec go bit start acc =
    if bit < 0 then List.rev acc
    else begin
      let span = 1 lsl bit in
      if n land span <> 0 then
        go (bit - 1) (start + span) ((bit, start / span, start) :: acc)
      else go (bit - 1) start acc
    end
  in
  if n = 0 then [] else go (top_bit 0) 0 []

let prove forest ~first ~last =
  let n = Forest.size forest in
  if first < 0 || last >= n || first > last then
    invalid_arg "Range_proof.prove: bad interval";
  let covers level index =
    let lo = index * (1 lsl level) and hi = (index + 1) * (1 lsl level) in
    not (hi <= first || lo > last)
  in
  let support = ref [] in
  (* Emit the roots of the maximal complete subtrees that contain no
     destination leaf; recurse into subtrees that do. *)
  let rec gen level index =
    if not (covers level index) then
      support := ((level, index), Forest.node forest ~level ~index) :: !support
    else if level > 0 then begin
      gen (level - 1) (2 * index);
      gen (level - 1) ((2 * index) + 1)
    end
  in
  List.iter (fun (l, i, _) -> gen l i) (peak_positions n);
  { size = n; first; last; support = List.rev !support; peak_set = Forest.peaks forest }

let support_size t = List.length t.support

let verify ~known t =
  let leaf_tbl = Hashtbl.create (List.length known) in
  List.iter (fun (i, h) -> Hashtbl.replace leaf_tbl i h) known;
  let support_tbl = Hashtbl.create (List.length t.support) in
  List.iter (fun (pos, h) -> Hashtbl.replace support_tbl pos h) t.support;
  let all_known =
    let rec go i = i > t.last || (Hashtbl.mem leaf_tbl i && go (i + 1)) in
    go t.first
  in
  if not all_known then false
  else begin
    let covers level index =
      let lo = index * (1 lsl level) and hi = (index + 1) * (1 lsl level) in
      not (hi <= t.first || lo > t.last)
    in
    let exception Missing in
    let rec eval level index =
      if not (covers level index) then
        match Hashtbl.find_opt support_tbl (level, index) with
        | Some h -> h
        | None -> raise Missing
      else if level = 0 then
        match Hashtbl.find_opt leaf_tbl index with
        | Some h -> h
        | None -> raise Missing
      else
        Hash.combine (eval (level - 1) (2 * index)) (eval (level - 1) ((2 * index) + 1))
    in
    match
      List.map (fun (l, i, _) -> eval l i) (peak_positions t.size)
    with
    | peaks -> Proof.node_set_equal peaks t.peak_set
    | exception Missing -> false
  end

let verify_against_commitment ~known ~commitment t =
  Hash.equal (Proof.node_set_digest t.peak_set) commitment && verify ~known t
