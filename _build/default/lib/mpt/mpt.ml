open Ledger_crypto
module Wire = Ledger_crypto.Wire

type node =
  | Leaf of leaf
  | Ext of ext
  | Branch of branch

and leaf = { mutable lpath : int array; mutable lvalue : bytes; mutable lhash : Hash.t option }
and ext = { mutable epath : int array; mutable echild : node; mutable ehash : Hash.t option }

and branch = {
  children : node option array;
  mutable bvalue : bytes option;
  mutable bhash : Hash.t option;
}

type t = { mutable root : node option; mutable cardinal : int; mutable nodes : int }

let create () = { root = None; cardinal = 0; nodes = 0 }
let cardinal t = t.cardinal
let node_count t = t.nodes

(* --- hashing ----------------------------------------------------------- *)

let hash_leaf_fields path value =
  let buf = Buffer.create 64 in
  Buffer.add_char buf 'L';
  Buffer.add_string buf (Nibble.to_string path);
  Buffer.add_char buf '\000';
  Buffer.add_bytes buf value;
  Hash.digest_bytes (Buffer.to_bytes buf)

let hash_ext_fields path child_hash =
  let buf = Buffer.create 64 in
  Buffer.add_char buf 'E';
  Buffer.add_string buf (Nibble.to_string path);
  Buffer.add_char buf '\000';
  Buffer.add_bytes buf (Hash.to_bytes child_hash);
  Hash.digest_bytes (Buffer.to_bytes buf)

let hash_branch_fields child_hashes value =
  let buf = Buffer.create 600 in
  Buffer.add_char buf 'B';
  Array.iter (fun h -> Buffer.add_bytes buf (Hash.to_bytes h)) child_hashes;
  (match value with
  | Some v ->
      Buffer.add_char buf 'V';
      Buffer.add_bytes buf v
  | None -> ());
  Hash.digest_bytes (Buffer.to_bytes buf)

let rec node_hash = function
  | Leaf l -> (
      match l.lhash with
      | Some h -> h
      | None ->
          let h = hash_leaf_fields l.lpath l.lvalue in
          l.lhash <- Some h;
          h)
  | Ext e -> (
      match e.ehash with
      | Some h -> h
      | None ->
          let h = hash_ext_fields e.epath (node_hash e.echild) in
          e.ehash <- Some h;
          h)
  | Branch b -> (
      match b.bhash with
      | Some h -> h
      | None ->
          let child_hashes =
            Array.map
              (function Some n -> node_hash n | None -> Hash.zero)
              b.children
          in
          let h = hash_branch_fields child_hashes b.bvalue in
          b.bhash <- Some h;
          h)

let root_hash t =
  match t.root with None -> Hash.zero | Some n -> node_hash n

(* --- insertion --------------------------------------------------------- *)

let mk_leaf t path value =
  t.nodes <- t.nodes + 1;
  Leaf { lpath = path; lvalue = value; lhash = None }

let mk_branch t =
  t.nodes <- t.nodes + 1;
  { children = Array.make 16 None; bvalue = None; bhash = None }

let mk_ext t path child =
  t.nodes <- t.nodes + 1;
  Ext { epath = path; echild = child; ehash = None }

(* Attach a remainder (possibly empty) of a key into a branch. *)
let attach_to_branch t branch path value =
  if Array.length path = 0 then branch.bvalue <- Some value
  else
    branch.children.(path.(0)) <-
      Some (mk_leaf t (Nibble.sub path 1 (Array.length path - 1)) value)

let rec insert_node t node key ki value =
  match node with
  | Leaf l ->
      let rest_new = Nibble.sub key ki (Array.length key - ki) in
      let cp = Nibble.common_prefix_length l.lpath 0 rest_new 0 in
      if cp = Array.length l.lpath && cp = Array.length rest_new then begin
        (* same key: replace *)
        l.lvalue <- value;
        l.lhash <- None;
        node
      end
      else begin
        let branch = mk_branch t in
        let old_rest = Nibble.sub l.lpath cp (Array.length l.lpath - cp) in
        let new_rest = Nibble.sub rest_new cp (Array.length rest_new - cp) in
        attach_to_branch t branch old_rest l.lvalue;
        t.nodes <- t.nodes - 1 (* the old leaf is replaced, not kept *);
        attach_to_branch t branch new_rest value;
        t.cardinal <- t.cardinal + 1;
        let bnode = Branch branch in
        if cp = 0 then bnode else mk_ext t (Nibble.sub rest_new 0 cp) bnode
      end
  | Ext e ->
      let cp = Nibble.common_prefix_length e.epath 0 key ki in
      if cp = Array.length e.epath then begin
        e.echild <- insert_node t e.echild key (ki + cp) value;
        e.ehash <- None;
        node
      end
      else begin
        (* split the extension *)
        let branch = mk_branch t in
        let pivot = e.epath.(cp) in
        let tail_len = Array.length e.epath - cp - 1 in
        let inner =
          if tail_len = 0 then e.echild
          else mk_ext t (Nibble.sub e.epath (cp + 1) tail_len) e.echild
        in
        branch.children.(pivot) <- Some inner;
        let new_rest = Nibble.sub key (ki + cp) (Array.length key - ki - cp) in
        attach_to_branch t branch new_rest value;
        t.cardinal <- t.cardinal + 1;
        let bnode = Branch branch in
        t.nodes <- t.nodes - 1 (* old ext replaced *);
        if cp = 0 then bnode else mk_ext t (Nibble.sub e.epath 0 cp) bnode
      end
  | Branch b ->
      if ki = Array.length key then begin
        if b.bvalue = None then t.cardinal <- t.cardinal + 1;
        b.bvalue <- Some value;
        b.bhash <- None;
        node
      end
      else begin
        let c = key.(ki) in
        (match b.children.(c) with
        | None ->
            b.children.(c) <-
              Some (mk_leaf t (Nibble.sub key (ki + 1) (Array.length key - ki - 1)) value);
            t.cardinal <- t.cardinal + 1
        | Some child -> b.children.(c) <- Some (insert_node t child key (ki + 1) value));
        b.bhash <- None;
        node
      end

let insert t ~key value =
  if Array.length key = 0 then invalid_arg "Mpt.insert: empty key";
  match t.root with
  | None ->
      t.root <- Some (mk_leaf t (Array.copy key) value);
      t.cardinal <- 1
  | Some root -> t.root <- Some (insert_node t root key 0 value)

let insert_string t ~key value = insert t ~key:(Nibble.of_hash (Hash.scatter key)) value

(* --- lookup ------------------------------------------------------------ *)

let rec find_node node key ki depth =
  match node with
  | Leaf l ->
      let rest = Array.length key - ki in
      if rest = Array.length l.lpath
         && Nibble.common_prefix_length l.lpath 0 key ki = rest
      then (Some l.lvalue, depth)
      else (None, depth)
  | Ext e ->
      let cp = Nibble.common_prefix_length e.epath 0 key ki in
      if cp = Array.length e.epath then find_node e.echild key (ki + cp) (depth + 1)
      else (None, depth)
  | Branch b ->
      if ki = Array.length key then (b.bvalue, depth)
      else begin
        match b.children.(key.(ki)) with
        | None -> (None, depth)
        | Some child -> find_node child key (ki + 1) (depth + 1)
      end

let find t ~key =
  match t.root with None -> None | Some n -> fst (find_node n key 0 1)

let find_string t ~key = find t ~key:(Nibble.of_hash (Hash.scatter key))

let lookup_depth t ~key =
  match t.root with
  | None -> 0
  | Some n -> (
      match find_node n key 0 1 with Some _, d -> d | None, _ -> 0)

(* --- proofs ------------------------------------------------------------ *)

type proof_node =
  | Leaf_node of { path : int array; value : bytes }
  | Extension_node of { path : int array; child : Hash.t }
  | Branch_node of { children : Hash.t array; value : bytes option; descend : int }

type proof = proof_node list

let branch_child_hashes b =
  Array.map (function Some n -> node_hash n | None -> Hash.zero) b.children

let prove t ~key =
  let rec walk node ki acc =
    match node with
    | Leaf l ->
        let rest = Array.length key - ki in
        if rest = Array.length l.lpath
           && Nibble.common_prefix_length l.lpath 0 key ki = rest
        then Some (List.rev (Leaf_node { path = Array.copy l.lpath; value = l.lvalue } :: acc))
        else None
    | Ext e ->
        let cp = Nibble.common_prefix_length e.epath 0 key ki in
        if cp = Array.length e.epath then
          walk e.echild (ki + cp)
            (Extension_node { path = Array.copy e.epath; child = node_hash e.echild } :: acc)
        else None
    | Branch b ->
        if ki = Array.length key then
          match b.bvalue with
          | Some v ->
              Some
                (List.rev
                   (Branch_node
                      { children = branch_child_hashes b; value = Some v; descend = -1 }
                   :: acc))
          | None -> None
        else begin
          match b.children.(key.(ki)) with
          | None -> None
          | Some child ->
              walk child (ki + 1)
                (Branch_node
                   { children = branch_child_hashes b; value = b.bvalue; descend = key.(ki) }
                :: acc)
        end
  in
  match t.root with None -> None | Some root -> walk root 0 []

let prove_string t ~key = prove t ~key:(Nibble.of_hash (Hash.scatter key))

let proof_node_hash = function
  | Leaf_node { path; value } -> hash_leaf_fields path value
  | Extension_node { path; child } -> hash_ext_fields path child
  | Branch_node { children; value; descend = _ } -> hash_branch_fields children value

let verify_proof ~root ~key ~value proof =
  let rec walk expected ki = function
    | [] -> false
    | node :: rest -> (
        if not (Hash.equal (proof_node_hash node) expected) then false
        else
          match node with
          | Leaf_node { path; value = v } ->
              rest = []
              && Array.length key - ki = Array.length path
              && Nibble.common_prefix_length path 0 key ki = Array.length path
              && Bytes.equal v value
          | Extension_node { path; child } ->
              Nibble.common_prefix_length path 0 key ki = Array.length path
              && walk child (ki + Array.length path) rest
          | Branch_node { children; value = bv; descend } ->
              if descend = -1 then
                rest = [] && ki = Array.length key
                && (match bv with Some v -> Bytes.equal v value | None -> false)
              else
                ki < Array.length key
                && key.(ki) = descend
                && descend >= 0 && descend < 16
                && walk children.(descend) (ki + 1) rest)
  in
  walk root 0 proof

let verify_proof_string ~root ~key ~value proof =
  verify_proof ~root ~key:(Nibble.of_hash (Hash.scatter key)) ~value proof

let proof_length = List.length

(* --- wire codec ---------------------------------------------------------- *)

let w_nibbles w path =
  Wire.w_int w (Array.length path);
  Array.iter (fun n -> Wire.w_u8 w n) path

let r_nibbles r =
  let n = Wire.r_int r in
  if n < 0 || n > 4096 then raise Wire.Corrupt;
  Array.init n (fun _ ->
      let v = Wire.r_u8 r in
      if v > 15 then raise Wire.Corrupt;
      v)

let w_proof_node w = function
  | Leaf_node { path; value } ->
      Wire.w_u8 w 0;
      w_nibbles w path;
      Wire.w_bytes w value
  | Extension_node { path; child } ->
      Wire.w_u8 w 1;
      w_nibbles w path;
      Wire.w_hash w child
  | Branch_node { children; value; descend } ->
      Wire.w_u8 w 2;
      Array.iter (Wire.w_hash w) children;
      Wire.w_option w (Wire.w_bytes w) value;
      Wire.w_int w descend

let r_proof_node r =
  match Wire.r_u8 r with
  | 0 ->
      let path = r_nibbles r in
      let value = Wire.r_bytes r in
      Leaf_node { path; value }
  | 1 ->
      let path = r_nibbles r in
      let child = Wire.r_hash r in
      Extension_node { path; child }
  | 2 ->
      let children = Array.init 16 (fun _ -> Wire.r_hash r) in
      let value = Wire.r_option r (fun () -> Wire.r_bytes r) in
      let descend = Wire.r_int r in
      Branch_node { children; value; descend }
  | _ -> raise Wire.Corrupt

let w_proof w proof = Wire.w_list w (w_proof_node w) proof
let r_proof r = Wire.r_list ~max:256 r (fun () -> r_proof_node r)
