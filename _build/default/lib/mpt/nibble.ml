open Ledger_crypto

let of_bytes b =
  let n = Bytes.length b in
  Array.init (2 * n) (fun i ->
      let byte = Char.code (Bytes.get b (i / 2)) in
      if i mod 2 = 0 then byte lsr 4 else byte land 0xF)

let of_hash h = of_bytes (Hash.to_bytes h)
let of_string s = of_bytes (Bytes.of_string s)

let common_prefix_length a ai b bi =
  let max_len = min (Array.length a - ai) (Array.length b - bi) in
  let rec go k = if k < max_len && a.(ai + k) = b.(bi + k) then go (k + 1) else k in
  go 0

let sub = Array.sub

let to_string nibbles =
  String.init (Array.length nibbles) (fun i -> "0123456789abcdef".[nibbles.(i)])
