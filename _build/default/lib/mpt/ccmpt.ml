open Ledger_crypto
open Ledger_merkle

type t = {
  trie : Mpt.t;
  acc : Accumulator.t;
  index : (string, int list ref) Hashtbl.t; (* clue -> jsns, newest first *)
}

let create acc = { trie = Mpt.create (); acc; index = Hashtbl.create 64 }

let encode_counter m = Bytes.of_string (string_of_int m)

let decode_counter b =
  match int_of_string_opt (Bytes.to_string b) with
  | Some m -> m
  | None -> invalid_arg "Ccmpt: corrupt counter"

let add t ~clue ~jsn =
  let cell =
    match Hashtbl.find_opt t.index clue with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.replace t.index clue r;
        r
  in
  cell := jsn :: !cell;
  Mpt.insert_string t.trie ~key:clue (encode_counter (List.length !cell))

let counter t ~clue =
  match Mpt.find_string t.trie ~key:clue with
  | Some b -> decode_counter b
  | None -> 0

let jsns t ~clue =
  match Hashtbl.find_opt t.index clue with
  | Some r -> List.rev !r
  | None -> []

let root_hash t = Mpt.root_hash t.trie

type proof = {
  counter : int;
  counter_proof : Mpt.proof;
  journal_proofs : (int * Hash.t * Proof.path) list;
}

let prove_clue t ~clue =
  match Mpt.prove_string t.trie ~key:clue with
  | None -> None
  | Some counter_proof ->
      let m = counter t ~clue in
      let journal_proofs =
        List.map
          (fun jsn -> (jsn, Accumulator.leaf t.acc jsn, Accumulator.prove t.acc jsn))
          (jsns t ~clue)
      in
      Some { counter = m; counter_proof; journal_proofs }

let verify_clue _t ~clue ~mpt_root ~acc_root proof =
  Mpt.verify_proof_string ~root:mpt_root ~key:clue
    ~value:(encode_counter proof.counter) proof.counter_proof
  && List.length proof.journal_proofs = proof.counter
  && List.for_all
       (fun (_jsn, digest, path) ->
         Accumulator.verify ~root:acc_root ~leaf:digest path)
       proof.journal_proofs
