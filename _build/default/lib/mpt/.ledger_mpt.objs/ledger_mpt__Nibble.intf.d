lib/mpt/nibble.mli: Hash Ledger_crypto
