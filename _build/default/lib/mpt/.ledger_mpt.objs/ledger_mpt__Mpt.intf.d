lib/mpt/mpt.mli: Hash Ledger_crypto
