lib/mpt/ccmpt.ml: Accumulator Bytes Hash Hashtbl Ledger_crypto Ledger_merkle List Mpt Proof
