lib/mpt/ccmpt.mli: Accumulator Hash Ledger_crypto Ledger_merkle Mpt Proof
