lib/mpt/nibble.ml: Array Bytes Char Hash Ledger_crypto String
