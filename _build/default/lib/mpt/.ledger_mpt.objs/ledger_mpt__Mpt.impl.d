lib/mpt/mpt.ml: Array Buffer Bytes Hash Ledger_crypto List Nibble
