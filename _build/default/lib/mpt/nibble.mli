(** Nibble (4-bit) paths for the Merkle Patricia Trie.

    CM-Tree1 keys are SHA-3 digests of clue strings, split into 64 nibbles
    so every branch node has 16 children (paper §IV-B2). *)

open Ledger_crypto

val of_bytes : bytes -> int array
(** High nibble first for each byte. *)

val of_hash : Hash.t -> int array
(** 64 nibbles of a 32-byte digest. *)

val of_string : string -> int array

val common_prefix_length : int array -> int -> int array -> int -> int
(** [common_prefix_length a ai b bi] is the length of the longest common
    prefix of [a] from [ai] and [b] from [bi]. *)

val sub : int array -> int -> int -> int array
val to_string : int array -> string
(** Hex rendering, for display and node serialization. *)
