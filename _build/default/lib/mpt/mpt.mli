(** A Merkle Patricia Trie with 16-way branch nodes, extension nodes and
    leaf nodes, as in Ethereum's state tree (paper §IV-B1).

    Keys are nibble paths (usually SHA-3-scattered clue keys); values are
    opaque byte strings.  Node hashes are memoized and invalidated along
    the insertion path only, so an insert costs O(depth) rehashes — the
    "bottom-up CM-Tree1 root hash calculation" of §IV-B3.

    Inclusion proofs present every node on the root-to-leaf walk with just
    enough material to recompute its digest; {!verify_proof} replays the
    walk against a trusted root.

    The trie also tracks the depth of each lookup so callers can model the
    paper's "top-layers cached in memory, bottom layers on disk" split
    ({!lookup_depth}). *)

open Ledger_crypto

type t

val create : unit -> t

val insert : t -> key:int array -> bytes -> unit
(** Insert or replace.  @raise Invalid_argument on an empty key. *)

val insert_string : t -> key:string -> bytes -> unit
(** Convenience: scatter the key with SHA-3 first (clue-key behaviour). *)

val find : t -> key:int array -> bytes option
val find_string : t -> key:string -> bytes option

val lookup_depth : t -> key:int array -> int
(** Number of nodes visited when resolving [key] (0 if absent). *)

val cardinal : t -> int
val root_hash : t -> Hash.t
(** Digest of the root node; {!Hash.zero} for an empty trie. *)

(** {1 Proofs} *)

type proof_node =
  | Leaf_node of { path : int array; value : bytes }
  | Extension_node of { path : int array; child : Hash.t }
  | Branch_node of { children : Hash.t array; value : bytes option; descend : int }

type proof = proof_node list
(** Root-first walk. *)

val prove : t -> key:int array -> proof option
(** [None] when the key is absent. *)

val prove_string : t -> key:string -> proof option

val verify_proof : root:Hash.t -> key:int array -> value:bytes -> proof -> bool
val verify_proof_string : root:Hash.t -> key:string -> value:bytes -> proof -> bool

val proof_length : proof -> int

val node_count : t -> int
(** Total nodes — a storage metric. *)

(** {1 Wire codec} *)

val w_proof : Ledger_crypto.Wire.writer -> proof -> unit
val r_proof : Ledger_crypto.Wire.reader -> proof
