(** The write-optimized clue SkipList (cSL) index — paper §IV-A.

    The earlier LedgerDB design indexed each clue's journals with a skip
    list: O(1) amortised insertion at the tail (journals arrive in jsn
    order) and O(log n) positional/range reads.  The CM-Tree supersedes
    it for {e verification}, but the cSL remains the retrieval index that
    maps a clue to its journal sequence numbers.

    This implementation is a classic randomised skip list specialised for
    monotone tail insertion, with deterministic level pseudo-randomness
    (seeded per list) so tests and benches are reproducible. *)

type t

val create : ?seed:int -> unit -> t

val append : t -> int -> unit
(** Insert a jsn at the tail.  @raise Invalid_argument if not strictly
    greater than the current maximum (journals arrive in order). *)

val length : t -> int
val mem : t -> int -> bool
(** O(log n) search. *)

val nth : t -> int -> int option
(** [nth t k] is the [k]-th smallest jsn. *)

val to_list : t -> int list
(** Ascending. *)

val range : t -> lo:int -> hi:int -> int list
(** All jsns in [[lo, hi]], ascending — the version-boundary lookup of
    clue range verification. *)

val min_elt : t -> int option
val max_elt : t -> int option

val search_steps : t -> int -> int
(** Number of node visits for [mem] — exposes the O(log n) behaviour for
    tests and the index ablation. *)

val level_count : t -> int
