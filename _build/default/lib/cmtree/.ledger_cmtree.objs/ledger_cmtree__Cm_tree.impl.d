lib/cmtree/cm_tree.ml: Buffer Bytes Hash Hashtbl Ledger_crypto Ledger_merkle Ledger_mpt List Mpt Nibble Option Proof Proof_codec Range_proof Shrubs
