lib/cmtree/clue_skiplist.mli:
