lib/cmtree/cm_tree.mli: Hash Ledger_crypto Ledger_merkle Ledger_mpt Mpt Range_proof
