lib/cmtree/clue_skiplist.ml: Array Int64 List Option
