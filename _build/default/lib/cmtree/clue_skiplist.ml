(* Indexable randomised skip list over strictly increasing integers.

   Each node stores, per level, its forward pointer and the number of
   level-0 links that pointer spans ("width"), which gives O(log n)
   positional access.  Because journals arrive in jsn order, insertion is
   always at the tail: we keep a finger (node and rank) per level, making
   appends O(1) amortised — the "write-optimized" property of cSL. *)

let max_level = 24

type node = {
  key : int;
  forward : node option array;
  width : int array;
}

type t = {
  head : node;
  mutable level : int; (* highest level in use, >= 1 *)
  mutable length : int;
  tails : node array; (* rightmost node per level *)
  tail_ranks : int array; (* 1-based rank of each tail (0 = head) *)
  mutable rng_state : int64;
}

let make_node key levels =
  { key; forward = Array.make levels None; width = Array.make levels 0 }

let create ?(seed = 0x5EED) () =
  let head = make_node min_int max_level in
  {
    head;
    level = 1;
    length = 0;
    tails = Array.make max_level head;
    tail_ranks = Array.make max_level 0;
    rng_state = Int64.of_int ((seed * 2) + 1);
  }

(* splitmix64 step for level draws *)
let next_bits t =
  t.rng_state <- Int64.add t.rng_state 0x9E3779B97F4A7C15L;
  let z = t.rng_state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let random_level t =
  let bits = next_bits t in
  let rec count lvl =
    if lvl >= max_level then max_level
    else if Int64.logand (Int64.shift_right_logical bits (lvl - 1)) 1L = 1L then
      count (lvl + 1)
    else lvl
  in
  count 1

let length t = t.length
let level_count t = t.level
let max_elt t = if t.length = 0 then None else Some t.tails.(0).key

let min_elt t =
  if t.length = 0 then None
  else Option.map (fun n -> n.key) t.head.forward.(0)

let append t key =
  (match max_elt t with
  | Some m when key <= m ->
      invalid_arg "Clue_skiplist.append: keys must be strictly increasing"
  | Some _ | None -> ());
  let node_level = random_level t in
  if node_level > t.level then t.level <- node_level;
  let node = make_node key node_level in
  let rank = t.length + 1 in
  for lvl = 0 to node_level - 1 do
    let tail = t.tails.(lvl) in
    tail.forward.(lvl) <- Some node;
    tail.width.(lvl) <- rank - t.tail_ranks.(lvl);
    t.tails.(lvl) <- node;
    t.tail_ranks.(lvl) <- rank
  done;
  t.length <- t.length + 1

(* Walk down the levels, advancing while the forward key stays <= [key];
   returns the rightmost node with key <= [key] plus the visit count. *)
let descend t key =
  let node = ref t.head and steps = ref 0 in
  for lvl = t.level - 1 downto 0 do
    let continue = ref true in
    while !continue do
      incr steps;
      match !node.forward.(lvl) with
      | Some next when next.key <= key -> node := next
      | Some _ | None -> continue := false
    done
  done;
  (!node, !steps)

let mem t key = (fst (descend t key)).key = key
let search_steps t key = snd (descend t key)

let nth t k =
  if k < 0 || k >= t.length then None
  else begin
    let target = k + 1 in
    let node = ref t.head and pos = ref 0 in
    for lvl = t.level - 1 downto 0 do
      let continue = ref true in
      while !continue do
        match !node.forward.(lvl) with
        | Some next when !pos + !node.width.(lvl) <= target ->
            pos := !pos + !node.width.(lvl);
            node := next
        | Some _ | None -> continue := false
      done
    done;
    if !pos = target then Some !node.key else None
  end

let to_list t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some n -> walk (n.key :: acc) n.forward.(0)
  in
  walk [] t.head.forward.(0)

let range t ~lo ~hi =
  if lo > hi then []
  else begin
    (* rightmost node with key <= lo - 1, then walk level 0 *)
    let start, _ = descend t (lo - 1) in
    let rec walk acc = function
      | Some n when n.key <= hi -> walk (n.key :: acc) n.forward.(0)
      | Some _ | None -> List.rev acc
    in
    walk [] start.forward.(0)
  end
