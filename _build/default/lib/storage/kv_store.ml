type entry = { mutable address : int; mutable version_count : int }

type t = {
  stream : Stream_store.stream;
  index : (string, entry) Hashtbl.t;
  latency : (Latency_model.t * Clock.t) option;
}

let create ?latency store ~name =
  { stream = Stream_store.stream store name; index = Hashtbl.create 64; latency }

let put t key value =
  let record = Bytes.create (String.length key + 1 + Bytes.length value) in
  Bytes.blit_string key 0 record 0 (String.length key);
  Bytes.set record (String.length key) '\000';
  Bytes.blit value 0 record (String.length key + 1) (Bytes.length value);
  let address = Stream_store.append t.stream record in
  (match Hashtbl.find_opt t.index key with
  | Some e ->
      e.address <- address;
      e.version_count <- e.version_count + 1
  | None -> Hashtbl.replace t.index key { address; version_count = 1 });
  address

let get t key =
  match Hashtbl.find_opt t.index key with
  | None -> None
  | Some e ->
      let record = Stream_store.read ?latency:t.latency t.stream e.address in
      let sep = Bytes.index record '\000' in
      Some (Bytes.sub record (sep + 1) (Bytes.length record - sep - 1))

let get_address t key =
  Option.map (fun e -> e.address) (Hashtbl.find_opt t.index key)

let versions t key =
  match Hashtbl.find_opt t.index key with Some e -> e.version_count | None -> 0

let mem t key = Hashtbl.mem t.index key
let cardinal t = Hashtbl.length t.index
