(** Append-only stream storage.

    LedgerDB "implements a stream file system … to manage journals"
    (paper §II-C).  A store holds named streams; each stream is an
    append-only sequence of variable-length records addressed by a dense
    record index.  Records are never overwritten; the only mutation is
    {!erase}, which supports the purge/occult reorganization utility by
    blanking a record's payload while keeping its slot (so indices remain
    stable and verification protocols can observe the erasure).

    The implementation keeps data in memory in segment buffers (4 KiB
    pages) and can persist to a directory for durability demonstrations.
    Reads optionally charge a {!Latency_model.t} so higher layers can
    simulate I/O cost. *)

type t
(** A stream store. *)

type stream
(** A handle to one named stream. *)

val create : ?dir:string -> unit -> t
(** In-memory store; with [dir], appends are also written to
    [dir/<stream>.log] so content survives the process. *)

val stream : t -> string -> stream
(** Get or create the named stream. *)

val stream_name : stream -> string

val append : stream -> bytes -> int
(** Append a record, returning its index (0-based, dense). *)

val length : stream -> int
(** Number of records ever appended (erased records still count). *)

val read : ?latency:Latency_model.t * Clock.t -> stream -> int -> bytes
(** [read stream i] returns record [i].
    @raise Invalid_argument if out of range.
    @raise Not_found if the record was erased. *)

val read_opt : ?latency:Latency_model.t * Clock.t -> stream -> int -> bytes option
(** Like {!read} but [None] for erased records. *)

val is_erased : stream -> int -> bool

val erase : stream -> int -> unit
(** Blank record [i]'s payload (idempotent).  Its index remains occupied. *)

val iter : stream -> (int -> bytes -> unit) -> unit
(** Iterate over non-erased records in index order. *)

val total_bytes : stream -> int
(** Live payload bytes (erased records contribute zero). *)

val page_count : stream -> int
(** Number of 4 KiB pages occupied by live payload — the unit in which the
    latency model accounts sequential reads. *)

val persist : t -> unit
(** Flush all streams to the backing directory (no-op without [dir]). *)

val compact : stream -> (int -> int -> unit) -> int
(** Rewrite the stream dropping erased slots; calls the remap function
    with [(old_index, new_index)] for every surviving record and returns
    the number of slots reclaimed.  Indices are re-densified, so callers
    must update any stored addresses via the remap callback. *)

val live_records : stream -> int
(** Records that still hold a payload. *)
