type t = { mutable now_us : int64 }

let create ?(start = 0L) () = { now_us = start }
let now t = t.now_us

let advance t d =
  if Int64.compare d 0L < 0 then invalid_arg "Clock.advance: negative";
  t.now_us <- Int64.add t.now_us d

let us_of_ms ms = Int64.of_float (ms *. 1000.)
let ms_of_us us = Int64.to_float us /. 1000.
let advance_ms t ms = advance t (us_of_ms ms)
let advance_sec t s = advance t (us_of_ms (s *. 1000.))
let elapsed_since t t0 = Int64.sub t.now_us t0
