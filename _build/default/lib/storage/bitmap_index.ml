type t = { mutable words : int array; mutable cardinal : int }

let bits_per_word = 62

let create () = { words = Array.make 4 0; cardinal = 0 }

let ensure t w =
  if w >= Array.length t.words then begin
    let bigger = Array.make (max (2 * Array.length t.words) (w + 1)) 0 in
    Array.blit t.words 0 bigger 0 (Array.length t.words);
    t.words <- bigger
  end

let set t i =
  if i < 0 then invalid_arg "Bitmap_index.set: negative";
  let w = i / bits_per_word and b = i mod bits_per_word in
  ensure t w;
  if t.words.(w) land (1 lsl b) = 0 then begin
    t.words.(w) <- t.words.(w) lor (1 lsl b);
    t.cardinal <- t.cardinal + 1
  end

let clear t i =
  if i < 0 then invalid_arg "Bitmap_index.clear: negative";
  let w = i / bits_per_word and b = i mod bits_per_word in
  if w < Array.length t.words && t.words.(w) land (1 lsl b) <> 0 then begin
    t.words.(w) <- t.words.(w) land lnot (1 lsl b);
    t.cardinal <- t.cardinal - 1
  end

let mem t i =
  if i < 0 then false
  else begin
    let w = i / bits_per_word and b = i mod bits_per_word in
    w < Array.length t.words && t.words.(w) land (1 lsl b) <> 0
  end

let cardinal t = t.cardinal

let iter_set t f =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
      done
  done

let max_set t =
  let best = ref None in
  iter_set t (fun i -> best := Some i);
  !best
