lib/storage/stream_store.ml: Array Bytes Filename Hashtbl Latency_model Printf Sys
