lib/storage/clock.ml: Int64
