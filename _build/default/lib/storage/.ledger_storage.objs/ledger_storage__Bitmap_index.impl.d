lib/storage/bitmap_index.ml: Array
