lib/storage/kv_store.mli: Clock Latency_model Stream_store
