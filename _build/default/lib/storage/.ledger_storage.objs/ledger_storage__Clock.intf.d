lib/storage/clock.mli:
