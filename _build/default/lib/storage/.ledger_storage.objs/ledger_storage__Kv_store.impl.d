lib/storage/kv_store.ml: Bytes Clock Hashtbl Latency_model Option Stream_store String
