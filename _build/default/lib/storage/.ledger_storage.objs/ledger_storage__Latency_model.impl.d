lib/storage/latency_model.ml: Clock Int64
