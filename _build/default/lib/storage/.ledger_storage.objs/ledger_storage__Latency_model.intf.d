lib/storage/latency_model.mli: Clock
