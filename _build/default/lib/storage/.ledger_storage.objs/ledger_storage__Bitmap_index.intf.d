lib/storage/bitmap_index.mli:
