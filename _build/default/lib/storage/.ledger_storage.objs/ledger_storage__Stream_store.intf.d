lib/storage/stream_store.mli: Clock Latency_model
