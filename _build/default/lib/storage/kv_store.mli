(** A small key-value store journaled onto a stream.

    Used for the world-state of the Fabric simulator and for the shared
    payload storage that the ledger proxy writes before handing digests to
    the ledger server (paper Fig. 1).  Writes append a record to a backing
    stream (giving them a stable storage address); reads go through an
    in-memory index and charge the latency model like any random I/O. *)

type t

val create : ?latency:Latency_model.t * Clock.t -> Stream_store.t -> name:string -> t

val put : t -> string -> bytes -> int
(** Store (replacing any previous value); returns the storage address
    (record index in the backing stream). *)

val get : t -> string -> bytes option
val get_address : t -> string -> int option
(** Storage address of the latest version of the key. *)

val versions : t -> string -> int
(** Number of times the key has been written. *)

val mem : t -> string -> bool
val cardinal : t -> int
