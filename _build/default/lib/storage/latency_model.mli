(** Simulated latency charging.

    The paper's testbed (ESSD disks, 25 Gb Ethernet, cross-cloud RTTs to
    QLDB) is replaced by a cost model: each I/O or network interaction
    advances a simulated {!Clock.t}.  The absolute constants are
    calibrated to commodity numbers; the *relative* behaviour (random I/O
    per clue entry vs a single read, cloud RTT per API call, consensus
    rounds) is what reproduces the shapes of Figs. 7 and 10 and
    Table II. *)

type t = {
  disk_seek_us : float;  (** one random I/O *)
  disk_read_us_per_kb : float;  (** sequential transfer *)
  net_rtt_us : float;  (** intra-datacenter round trip *)
  cloud_rtt_us : float;  (** client-to-cloud-service round trip *)
}

val default : t
(** Local-cluster numbers (ESSD-like disk, 25 GbE network). *)

val cloud_service : t
(** Public-cloud-service numbers (used by the QLDB simulator). *)

val free : t
(** All costs zero — for pure algorithmic microbenchmarks. *)

val charge_seek : t -> Clock.t -> unit
val charge_read : t -> Clock.t -> bytes:int -> unit
(** A random read: one seek plus transfer time. *)

val charge_net : t -> Clock.t -> unit
val charge_cloud : t -> Clock.t -> unit
