let page_size = 4096

type record = { mutable payload : bytes option }

type stream = {
  name : string;
  mutable records : record array;
  mutable count : int;
  mutable live_bytes : int;
}

type t = { dir : string option; streams : (string, stream) Hashtbl.t }

let create ?dir () =
  (match dir with
  | Some d when not (Sys.file_exists d) -> Sys.mkdir d 0o755
  | Some _ | None -> ());
  { dir; streams = Hashtbl.create 16 }

let stream t name =
  match Hashtbl.find_opt t.streams name with
  | Some s -> s
  | None ->
      let s = { name; records = Array.make 64 { payload = None }; count = 0;
                live_bytes = 0 } in
      Hashtbl.replace t.streams name s;
      s

let stream_name s = s.name

let ensure_capacity s =
  if s.count >= Array.length s.records then begin
    let bigger = Array.make (2 * Array.length s.records) { payload = None } in
    Array.blit s.records 0 bigger 0 s.count;
    s.records <- bigger
  end

let append s payload =
  ensure_capacity s;
  let i = s.count in
  s.records.(i) <- { payload = Some (Bytes.copy payload) };
  s.count <- s.count + 1;
  s.live_bytes <- s.live_bytes + Bytes.length payload;
  i

let length s = s.count

let check_range s i =
  if i < 0 || i >= s.count then
    invalid_arg
      (Printf.sprintf "Stream_store: index %d out of range [0,%d) in %s" i
         s.count s.name)

let charge latency bytes =
  match latency with
  | None -> ()
  | Some (model, clock) -> Latency_model.charge_read model clock ~bytes

let read_opt ?latency s i =
  check_range s i;
  match s.records.(i).payload with
  | None -> None
  | Some p ->
      charge latency (Bytes.length p);
      Some (Bytes.copy p)

let read ?latency s i =
  match read_opt ?latency s i with Some p -> p | None -> raise Not_found

let is_erased s i =
  check_range s i;
  s.records.(i).payload = None

let erase s i =
  check_range s i;
  (match s.records.(i).payload with
  | Some p -> s.live_bytes <- s.live_bytes - Bytes.length p
  | None -> ());
  s.records.(i).payload <- None

let iter s f =
  for i = 0 to s.count - 1 do
    match s.records.(i).payload with
    | Some p -> f i (Bytes.copy p)
    | None -> ()
  done

let total_bytes s = s.live_bytes
let page_count s = (s.live_bytes + page_size - 1) / page_size

let persist t =
  match t.dir with
  | None -> ()
  | Some dir ->
      Hashtbl.iter
        (fun name s ->
          let path = Filename.concat dir (name ^ ".log") in
          let oc = open_out_bin path in
          (try
             for i = 0 to s.count - 1 do
               match s.records.(i).payload with
               | Some p ->
                   Printf.fprintf oc "%d %d\n" i (Bytes.length p);
                   output_bytes oc p;
                   output_char oc '\n'
               | None -> Printf.fprintf oc "%d -1\n" i
             done;
             close_out oc
           with e ->
             close_out_noerr oc;
             raise e))
        t.streams

let live_records s =
  let n = ref 0 in
  for i = 0 to s.count - 1 do
    if s.records.(i).payload <> None then incr n
  done;
  !n

let compact s remap =
  let keep = live_records s in
  let fresh = Array.make (max 64 keep) { payload = None } in
  let next = ref 0 in
  for i = 0 to s.count - 1 do
    match s.records.(i).payload with
    | Some _ ->
        fresh.(!next) <- s.records.(i);
        remap i !next;
        incr next
    | None -> ()
  done;
  let reclaimed = s.count - keep in
  s.records <- fresh;
  s.count <- keep;
  reclaimed
