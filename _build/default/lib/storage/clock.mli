(** Simulated time.

    The paper's *when* verification is entirely about the relationship
    between timestamps assigned by different parties (ledger, adversary,
    TSA).  A controllable clock lets us replay the attack scenarios of
    Fig. 5 deterministically and lets the latency model charge simulated
    I/O and network costs without sleeping. *)

type t

val create : ?start:int64 -> unit -> t
(** A fresh clock, starting at [start] microseconds (default 0). *)

val now : t -> int64
(** Current simulated time in microseconds. *)

val advance : t -> int64 -> unit
(** Move time forward; negative amounts are rejected. *)

val advance_ms : t -> float -> unit
val advance_sec : t -> float -> unit

val elapsed_since : t -> int64 -> int64
(** [elapsed_since t t0] is [now t - t0]. *)

val us_of_ms : float -> int64
val ms_of_us : int64 -> float
