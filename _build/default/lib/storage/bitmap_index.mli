(** Growable bitset — the occult bitmap index.

    Asynchronous occult (paper §III-A3) first sets a bit marking the
    journal as deleted; the physical erasure happens later during data
    reorganization.  This module is that bitmap. *)

type t

val create : unit -> t

val set : t -> int -> unit
(** Mark position [i]; grows as needed.  @raise Invalid_argument if
    negative. *)

val clear : t -> int -> unit
val mem : t -> int -> bool
val cardinal : t -> int
(** Number of set bits. *)

val iter_set : t -> (int -> unit) -> unit
(** Visit set positions in increasing order. *)

val max_set : t -> int option
(** Highest set position, if any. *)
