(** A Factom-style notarization blockchain (Table I row; §II-A).

    Entries are grouped into per-application {e chains}; every anchoring
    period the pending entry blocks are merkelized into a {e directory
    block}, and the directory-block chain is anchored into a Bitcoin-like
    block chain ({!Ledger_merkle.Bim}).  Existence verification walks
    entry → entry block → directory block → Bitcoin anchor — rigorous
    *what*, coarse *when* (Bitcoin's ~10-minute blocks, not judicial),
    and the "Highest" storage overhead of Table I (every layer persists
    headers and blocks). *)

open Ledger_crypto
open Ledger_storage

type t

val create : ?anchor_interval_ms:float -> clock:Clock.t -> unit -> t

val add_entry : t -> chain:string -> bytes -> Hash.t
(** Record an entry; returns its digest.  Pending until the next
    directory block. *)

val seal_directory_block : t -> int
(** Cut a directory block from the pending entries and anchor it into the
    Bitcoin-like chain; returns the directory block height.
    @raise Invalid_argument when nothing is pending. *)

val tick : t -> unit
(** Seal automatically when the anchoring interval elapsed. *)

val directory_blocks : t -> int
val entry_count : t -> int

type proof

val prove_entry : t -> chain:string -> Hash.t -> proof option
(** Proof for an entry digest recorded on the given chain ([None] if
    unknown or still pending). *)

val verify_entry : t -> chain:string -> Hash.t -> proof -> bool

val anchored_time : t -> chain:string -> Hash.t -> int64 option
(** Timestamp of the Bitcoin anchor covering the entry — the coarse
    *when* evidence. *)

val storage_bytes : t -> int
(** Total bytes of entries + entry blocks + directory blocks + anchors. *)
