(** A QLDB-style centralized ledger service (paper §VI-D, Table II).

    Faithful structural properties:
    - every document revision is a leaf of one global {e tim} Merkle
      accumulator, so verification proofs grow with total ledger size;
    - [GetRevision] verification walks the full-height proof, fetching
      each proof node through the service API;
    - the lineage pattern is the paper's [key, data, prehash, sig] schema:
      verifying a key at version [v] verifies {e every} revision
      individually and re-checks each prehash link and signature — cost
      linear in the version count.

    Substitution note: the public AWS service is replaced by a latency
    model (cloud RTT per API call, per-proof-node fetch cost) calibrated
    to commodity cross-service numbers; the {e shape} — flat LedgerDB vs
    version-linear QLDB — is structural, not calibrated. *)

open Ledger_storage

type t

type config = {
  cloud_rtt_ms : float;  (** one client→service round trip *)
  proof_node_fetch_ms : float;  (** per proof-node digest fetch *)
  sig_verify_ms : float;  (** client-side ECDSA verify in the lineage schema *)
}

val default_config : config

val create : ?config:config -> clock:Clock.t -> unit -> t

(** {1 Notarization document API} *)

val insert : t -> id:string -> bytes -> unit
val retrieve : t -> id:string -> bytes option
val verify : t -> id:string -> bool
(** [GetRevision]-style: fetch the revision, fetch the digest tip, walk
    the full accumulator proof. *)

(** {1 Lineage schema} *)

val put_version : t -> key:string -> bytes -> unit
(** Appends a new revision with prehash of the previous one and a client
    signature, per the paper's lineage schema. *)

val version_count : t -> key:string -> int

val verify_lineage : t -> key:string -> bool
(** Verify every revision of the key: existence proof + prehash link +
    signature, each at full per-revision cost. *)

val size : t -> int

val preload : t -> int -> unit
(** Grow the global accumulator with [n] synthetic revisions (no clock
    charge) so proofs have production-scale height. *)
