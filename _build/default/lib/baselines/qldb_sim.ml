open Ledger_crypto
open Ledger_storage
open Ledger_merkle

type config = {
  cloud_rtt_ms : float;
  proof_node_fetch_ms : float;
  sig_verify_ms : float;
}

let default_config =
  { cloud_rtt_ms = 33.; proof_node_fetch_ms = 70.; sig_verify_ms = 0.07 }

type revision = {
  leaf_index : int;
  data_digest : Hash.t;
  prehash : Hash.t; (* previous revision digest (lineage schema) *)
  signed : bool;
}

type t = {
  cfg : config;
  clock : Clock.t;
  acc : Accumulator.t; (* the single global journal accumulator *)
  docs : (string, bytes) Hashtbl.t;
  doc_leaf : (string, int) Hashtbl.t;
  history : (string, revision list ref) Hashtbl.t; (* newest first *)
}

let create ?(config = default_config) ~clock () =
  {
    cfg = config;
    clock;
    acc = Accumulator.create ();
    docs = Hashtbl.create 256;
    doc_leaf = Hashtbl.create 256;
    history = Hashtbl.create 256;
  }

let charge_ms t ms = Clock.advance t.clock (Clock.us_of_ms ms)

let leaf_digest ~id data = Hash.digest_string (id ^ ":" ^ Bytes.to_string data)

let insert t ~id data =
  (* write + commit: two service round trips *)
  charge_ms t (2. *. t.cfg.cloud_rtt_ms);
  let idx = Accumulator.append t.acc (leaf_digest ~id data) in
  Hashtbl.replace t.docs id (Bytes.copy data);
  Hashtbl.replace t.doc_leaf id idx

let retrieve t ~id =
  charge_ms t t.cfg.cloud_rtt_ms;
  Option.map Bytes.copy (Hashtbl.find_opt t.docs id)

(* Full tim proof walk, fetching every node through the service. *)
let verify_revision t leaf_index expected_digest =
  let proof = Accumulator.prove t.acc leaf_index in
  charge_ms t (float_of_int (Proof.length proof) *. t.cfg.proof_node_fetch_ms);
  Accumulator.verify ~root:(Accumulator.root t.acc) ~leaf:expected_digest proof

let verify t ~id =
  (* GetRevision: retrieve the document, fetch the digest tip, walk the
     proof. *)
  charge_ms t (2. *. t.cfg.cloud_rtt_ms);
  match (Hashtbl.find_opt t.docs id, Hashtbl.find_opt t.doc_leaf id) with
  | Some data, Some leaf_index ->
      verify_revision t leaf_index (leaf_digest ~id data)
  | _ -> false

let put_version t ~key data =
  charge_ms t t.cfg.cloud_rtt_ms;
  let cell =
    match Hashtbl.find_opt t.history key with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.replace t.history key r;
        r
  in
  let prehash =
    match !cell with [] -> Hash.zero | r :: _ -> r.data_digest
  in
  let version = List.length !cell in
  let id = Printf.sprintf "%s#%d" key version in
  let data_digest = leaf_digest ~id data in
  let leaf_index = Accumulator.append t.acc data_digest in
  Hashtbl.replace t.docs id (Bytes.copy data);
  Hashtbl.replace t.doc_leaf id leaf_index;
  cell := { leaf_index; data_digest; prehash; signed = true } :: !cell

let version_count t ~key =
  match Hashtbl.find_opt t.history key with
  | Some r -> List.length !r
  | None -> 0

let verify_lineage t ~key =
  match Hashtbl.find_opt t.history key with
  | None -> false
  | Some cell ->
      let revisions = List.rev !cell in
      charge_ms t t.cfg.cloud_rtt_ms;
      let prev = ref Hash.zero in
      List.for_all
        (fun r ->
          (* each revision: existence proof, prehash link, signature *)
          charge_ms t t.cfg.cloud_rtt_ms;
          charge_ms t t.cfg.sig_verify_ms;
          let link_ok = Hash.equal r.prehash !prev in
          prev := r.data_digest;
          link_ok && r.signed && verify_revision t r.leaf_index r.data_digest)
        revisions

let size t = Accumulator.size t.acc

let preload t n =
  for i = 0 to n - 1 do
    ignore
      (Accumulator.append t.acc (Hash.digest_string ("preload:" ^ string_of_int i)))
  done
