open Ledger_crypto
open Ledger_storage
open Ledger_merkle

type config = {
  endorsers : int;
  endorsement_ms : float;
  batch_size : int;
  batch_timeout_ms : float;
  ordering_per_tx_us : float;
  validation_base_us : float;
  validation_log_factor_us : float;
  state_read_ms : float;
  sig_verify_us : float;
}

let default_config =
  {
    endorsers = 5;
    endorsement_ms = 20.;
    batch_size = 500;
    batch_timeout_ms = 1000.;
    ordering_per_tx_us = 420.;
    validation_base_us = 10.;
    validation_log_factor_us = 5.;
    state_read_ms = 4.5;
    sig_verify_us = 70.;
  }

type t = {
  cfg : config;
  clock : Clock.t;
  bim : Bim.t; (* hash-chained blocks over tx digests *)
  state : (string, bytes) Hashtbl.t;
  key_versions : (string, int) Hashtbl.t; (* MVCC version per key *)
  history : (string, bytes list ref) Hashtbl.t; (* newest first *)
  mutable pending : int;
  mutable committed : int;
  mutable aborted : int; (* MVCC conflicts *)
}

let create ?(config = default_config) ~clock () =
  {
    cfg = config;
    clock;
    bim = Bim.create ~block_size:config.batch_size;
    state = Hashtbl.create 256;
    key_versions = Hashtbl.create 256;
    history = Hashtbl.create 256;
    pending = 0;
    committed = 0;
    aborted = 0;
  }

let charge_ms t ms = Clock.advance t.clock (Clock.us_of_ms ms)
let charge_us t us = Clock.advance t.clock (Int64.of_float us)

let log2i n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 (max 1 n)

let validation_cost_us t =
  t.cfg.validation_base_us
  +. (t.cfg.validation_log_factor_us *. float_of_int (log2i (t.committed + 1)))

(* The ordering service plus validation/commit is the serial section of
   the pipeline; endorsement happens in parallel across clients, so for
   throughput only the serial section matters. *)
(* Fabric's rigorous *what* (Table I): SPV proof of a committed
   transaction against the validated block-header chain. *)
type tx_proof = { tx_index : int; spv : Bim.proof }

let prove_tx t ~tx_index =
  if tx_index < 0 || tx_index >= Bim.size t.bim then None
  else begin
    Bim.flush t.bim;
    Some { tx_index; spv = Bim.prove t.bim tx_index }
  end

let verify_tx t ~key ~data proof =
  let digest = Hash.digest_string (key ^ "=" ^ Bytes.to_string data) in
  let headers = Array.of_list (Bim.headers t.bim) in
  Bim.verify ~headers ~leaf:digest proof.spv

let key_version t key =
  Option.value ~default:0 (Hashtbl.find_opt t.key_versions key)

let commit_tx ?read_version t ~key data =
  charge_us t t.cfg.ordering_per_tx_us;
  charge_us t (validation_cost_us t);
  (* MVCC validation: a transaction endorsed against a stale key version
     is aborted at commit — Fabric's execute-order-validate hazard *)
  let current = key_version t key in
  match read_version with
  | Some v when v <> current -> t.aborted <- t.aborted + 1
  | Some _ | None ->
      let digest = Hash.digest_string (key ^ "=" ^ Bytes.to_string data) in
      ignore (Bim.append t.bim ~timestamp:(Clock.now t.clock) digest);
      Hashtbl.replace t.state key (Bytes.copy data);
      Hashtbl.replace t.key_versions key (current + 1);
      (match Hashtbl.find_opt t.history key with
      | Some r -> r := Bytes.copy data :: !r
      | None -> Hashtbl.replace t.history key (ref [ Bytes.copy data ]));
      t.committed <- t.committed + 1;
      t.pending <- t.pending + 1;
      if t.pending >= t.cfg.batch_size then t.pending <- 0

let endorse t ~key =
  (* simulate chaincode execution: the endorsers read the key's current
     version, which the transaction is later validated against *)
  charge_ms t t.cfg.endorsement_ms;
  charge_us t (float_of_int t.cfg.endorsers *. t.cfg.sig_verify_us);
  key_version t key

let submit t ~key data =
  let read_version = endorse t ~key in
  commit_tx ~read_version t ~key data

let submit_pipelined t ~key data = commit_tx t ~key data

let submit_endorsed t ~key ~read_version data =
  commit_tx ~read_version t ~key data

let aborted t = t.aborted

let flush t =
  Bim.flush t.bim;
  if t.pending > 0 then begin
    charge_ms t t.cfg.batch_timeout_ms;
    t.pending <- 0
  end

let get_state t ~key =
  charge_ms t t.cfg.state_read_ms;
  Option.map Bytes.copy (Hashtbl.find_opt t.state key)

(* A "verification" is a chaincode query: pay one endorsement round plus
   ordering of the audit record, then the state read and the implicit
   consensus-signature checks. *)
let chaincode_invocation t =
  charge_ms t t.cfg.endorsement_ms;
  charge_ms t t.cfg.batch_timeout_ms;
  charge_us t (float_of_int t.cfg.endorsers *. t.cfg.sig_verify_us)

let verify_key t ~key =
  chaincode_invocation t;
  charge_ms t t.cfg.state_read_ms;
  Hashtbl.mem t.state key

let verify_history t ~key =
  chaincode_invocation t;
  match Hashtbl.find_opt t.history key with
  | None -> 0
  | Some r ->
      (* the whole history sits contiguously: one random I/O plus a
         sequential sweep with per-version hash checks *)
      charge_ms t t.cfg.state_read_ms;
      let versions = List.rev !r in
      List.iter
        (fun data ->
          charge_us t 1.;
          ignore (Hash.digest_bytes data))
        versions;
      List.length versions

let verify_history_server t ~key =
  match Hashtbl.find_opt t.history key with
  | None -> 0
  | Some r ->
      charge_ms t t.cfg.state_read_ms;
      let versions = List.rev !r in
      List.iter
        (fun data ->
          charge_us t 1.;
          ignore (Hash.digest_bytes data))
        versions;
      List.length versions

let version_count t ~key =
  match Hashtbl.find_opt t.history key with
  | Some r -> List.length !r
  | None -> 0

let block_count t = Bim.block_count t.bim
let size t = t.committed
