open Ledger_crypto
open Ledger_storage
open Ledger_timenotary

type t = {
  clock : Clock.t;
  docs : (string, bytes) Hashtbl.t;
  digests : (string, Hash.t * int) Hashtbl.t; (* key -> digest, ticket *)
  pegging : Pegging.One_way.t;
}

let create ?anchor_interval_ms ~clock () =
  ignore anchor_interval_ms;
  {
    clock;
    docs = Hashtbl.create 64;
    digests = Hashtbl.create 64;
    pegging = Pegging.One_way.create ~clock;
  }

let put t ~key data =
  let digest = Hash.digest_string (key ^ ":" ^ Bytes.to_string data) in
  let ticket = Pegging.One_way.enqueue t.pegging digest in
  Hashtbl.replace t.docs key (Bytes.copy data);
  Hashtbl.replace t.digests key (digest, ticket)

let get t ~key = Option.map Bytes.copy (Hashtbl.find_opt t.docs key)
let pending_digests t = Pegging.One_way.queued t.pegging
let anchor_now t = Pegging.One_way.anchor_next t.pegging

let anchored_time t ~key =
  match Hashtbl.find_opt t.digests key with
  | None -> None
  | Some (_, ticket) -> Pegging.One_way.anchored_time t.pegging ticket

let verify t ~key =
  match (Hashtbl.find_opt t.docs key, Hashtbl.find_opt t.digests key) with
  | Some data, Some (digest, _) ->
      Hash.equal digest (Hash.digest_string (key ^ ":" ^ Bytes.to_string data))
  | _ -> false

let digest_of t ~key = Option.map fst (Hashtbl.find_opt t.digests key)

(* referenced to keep the latency model wired for future extensions *)
let _ = fun t -> t.clock
