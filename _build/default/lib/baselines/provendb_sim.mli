(** A ProvenDB-style CLD: a document database whose digests are pegged
    one-way to a public blockchain (paper §III-B1, Table I).

    The operator chooses when queued digests are anchored — this is the
    protocol flaw exploited by the infinite time amplification attack
    (Fig. 5(a)); {!Ledger_timenotary.Attack.one_way_amplification} drives
    exactly this surface. *)

open Ledger_crypto
open Ledger_storage

type t

val create : ?anchor_interval_ms:float -> clock:Clock.t -> unit -> t

val put : t -> key:string -> bytes -> unit
val get : t -> key:string -> bytes option

val pending_digests : t -> int
val anchor_now : t -> (int * int64) option
(** Operator-triggered anchoring of the oldest queued digest; returns the
    ticket and assigned timestamp. *)

val anchored_time : t -> key:string -> int64 option
(** The externally provable timestamp of a key's latest version, if its
    digest has been anchored. *)

val verify : t -> key:string -> bool
(** Forward-integrity check: the stored document matches its queued or
    anchored digest. *)

val digest_of : t -> key:string -> Hash.t option
