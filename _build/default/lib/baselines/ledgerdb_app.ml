open Ledger_crypto
open Ledger_storage
open Ledger_core

type deployment = Local | Cloud

type t = {
  ledger : Ledger.t;
  clock : Clock.t;
  member : Roles.member;
  priv : Ecdsa.private_key;
  deployment : deployment;
  entry_io_ms : float; (* one CM-Tree2 entry random I/O *)
  server_base_ms : float; (* fixed per-verification server work *)
}

let make deployment ~clock =
  let latency, crypto =
    match deployment with
    | Local ->
        ( { Latency_model.default with net_rtt_us = 0. },
          Crypto_profile.Simulated { sign_us = 6.; verify_us = 10. } )
    | Cloud ->
        ( Latency_model.cloud_service,
          Crypto_profile.Simulated { sign_us = 10.; verify_us = 15. } )
  in
  let config =
    { Ledger.name = "app-ledger"; latency; crypto;
      fam_delta = 15; block_size = 256; member_ca = None }
  in
  let ledger = Ledger.create ~config ~clock () in
  let member, priv =
    Ledger.new_member ledger ~name:"app-client" ~role:Roles.Regular_user
  in
  {
    ledger;
    clock;
    member;
    priv;
    deployment;
    entry_io_ms = 0.1;
    server_base_ms = (match deployment with Local -> 2.0 | Cloud -> 0.5);
  }

let create_local ~clock = make Local ~clock
let create_cloud ~clock = make Cloud ~clock
let ledger t = t.ledger
let clock t = t.clock

let charge_ms t ms = Clock.advance t.clock (Clock.us_of_ms ms)

let charge_rtt t =
  match t.deployment with
  | Local -> Latency_model.charge_net Latency_model.default t.clock
  | Cloud -> Latency_model.charge_cloud Latency_model.cloud_service t.clock

let log2i n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 (max 1 n)

(* per-append index maintenance grows logarithmically with ledger size *)
let charge_index_cost t =
  let us = 0.2 *. float_of_int (log2i (Ledger.size t.ledger + 1)) in
  Clock.advance t.clock (Int64.of_float us)

let insert t ~id data =
  charge_rtt t;
  charge_index_cost t;
  ignore (Ledger.append t.ledger ~member:t.member ~priv:t.priv ~clues:[ id ] data)

(* Closed-loop throughput variant: requests are pipelined, so the client
   round trip does not serialize; only server-side work is charged. *)
let insert_pipelined t ~id data =
  charge_index_cost t;
  ignore (Ledger.append t.ledger ~member:t.member ~priv:t.priv ~clues:[ id ] data)

let retrieve t ~id =
  charge_rtt t;
  match Ledger.clue_jsns t.ledger id with
  | [] -> None
  | jsn :: _ -> Ledger.payload t.ledger jsn

(* One verification: server resolves the clue, reads each entry with one
   random I/O, assembles the batch proof; client replays it locally. *)
let verify_clue_charged t ~key =
  charge_rtt t;
  charge_ms t t.server_base_ms;
  let entries = Ledger.clue_entries t.ledger key in
  charge_ms t (float_of_int entries *. t.entry_io_ms);
  match Ledger.prove_clue t.ledger ~clue:key () with
  | None -> false
  | Some proof -> Ledger.verify_clue_client t.ledger proof

let verify t ~id = verify_clue_charged t ~key:id

let put_version t ~key data =
  charge_rtt t;
  charge_index_cost t;
  ignore
    (Ledger.append t.ledger ~member:t.member ~priv:t.priv ~clues:[ key ] data)

let version_count t ~key = Ledger.clue_entries t.ledger key
let verify_lineage t ~key = verify_clue_charged t ~key

let verify_lineage_server t ~key =
  let entries = Ledger.clue_entries t.ledger key in
  if entries = 0 then false
  else begin
    charge_ms t (float_of_int entries *. t.entry_io_ms);
    Ledger.verify_clue_server t.ledger ~clue:key
  end

let size t = Ledger.size t.ledger
