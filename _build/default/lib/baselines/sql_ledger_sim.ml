open Ledger_crypto
open Ledger_storage
module Proof = Ledger_merkle.Proof
type transaction = { mutable key : string; mutable value : bytes; seq : int }

type t = {
  clock : Clock.t;
  block_size : int;
  state : (string, bytes) Hashtbl.t;
  mutable history : transaction list; (* newest first *)
  mutable count : int;
  mutable published : Hash.t list; (* trusted external storage, newest first *)
}

let create ?(block_size = 16) ~clock () =
  { clock; block_size; state = Hashtbl.create 64; history = []; count = 0;
    published = [] }

let execute t ~key value =
  Clock.advance t.clock 100L;
  Hashtbl.replace t.state key (Bytes.copy value);
  t.history <- { key; value = Bytes.copy value; seq = t.count } :: t.history;
  t.count <- t.count + 1

let get t ~key = Option.map Bytes.copy (Hashtbl.find_opt t.state key)
let history_length t = t.count
let block_count t = (t.count + t.block_size - 1) / t.block_size

let tx_digest tx =
  Hash.digest_string (Printf.sprintf "%d:%s=%s" tx.seq tx.key (Bytes.to_string tx.value))

(* Hash-chain the history in block_size groups, like ledger tables chain
   block digests. *)
let ledger_digest t =
  let ordered = List.rev t.history in
  let rec chain acc pending n = function
    | [] ->
        if pending = [] then acc
        else Hash.combine acc (Proof.node_set_digest (List.rev pending))
    | tx :: rest ->
        let pending = tx_digest tx :: pending in
        if n + 1 = t.block_size then
          chain
            (Hash.combine acc (Proof.node_set_digest (List.rev pending)))
            [] 0 rest
        else chain acc pending (n + 1) rest
  in
  chain Hash.zero [] 0 ordered

let publish_digest t =
  let d = ledger_digest t in
  t.published <- d :: t.published;
  d

let published_digests t = t.published

let verify t =
  match t.published with
  | [] -> `No_published_digest
  | latest :: _ ->
      (* Forward integrity: only the state *as of the publication* is
         protected; we conservatively recompute the full chain, which
         matches when no transactions were added since the publication,
         and otherwise check that the published digest is a chain prefix
         by replaying up to each possible cut. *)
      let ordered = List.rev t.history in
      let rec prefixes acc pending n txs found =
        let here =
          if pending = [] then acc
          else Hash.combine acc (Proof.node_set_digest (List.rev pending))
        in
        let found = found || Hash.equal here latest in
        match txs with
        | [] -> found
        | tx :: rest ->
            let pending = tx_digest tx :: pending in
            if n + 1 = t.block_size then
              prefixes
                (Hash.combine acc (Proof.node_set_digest (List.rev pending)))
                [] 0 rest found
            else prefixes acc pending (n + 1) rest found
      in
      if prefixes Hash.zero [] 0 ordered false then `Ok else `Tampered

module Unsafe = struct
  let rewrite_history t ~index ~key value =
    match List.find_opt (fun tx -> tx.seq = index) t.history with
    | Some tx ->
        tx.key <- key;
        tx.value <- Bytes.copy value
    | None -> invalid_arg "Sql_ledger_sim.Unsafe.rewrite_history: bad index"
end
