open Ledger_crypto
open Ledger_storage
open Ledger_merkle

(* A sealed directory block: per-chain entry-block trees plus a directory
   tree over the entry-block roots, anchored at a bim index. *)
type directory_block = {
  height : int;
  chains : (string * Merkle_tree.t) list; (* chain -> entry block tree *)
  directory_tree : Merkle_tree.t; (* over entry-block roots *)
  anchor_index : int; (* transaction index in the bitcoin-like chain *)
  timestamp : int64;
}

type t = {
  clock : Clock.t;
  anchor_interval_us : int64;
  bitcoin : Bim.t;
  mutable pending : (string * Hash.t) list; (* chain, entry digest; newest first *)
  mutable blocks : directory_block list; (* newest first *)
  mutable entries : int;
  mutable bytes : int;
  mutable last_seal : int64;
  (* entry digest -> (directory height, chain) for proof lookup *)
  index : (string, int * string) Hashtbl.t;
}

let create ?(anchor_interval_ms = 600_000.) ~clock () =
  {
    clock;
    anchor_interval_us = Clock.us_of_ms anchor_interval_ms;
    bitcoin = Bim.create ~block_size:1;
    pending = [];
    blocks = [];
    entries = 0;
    bytes = 0;
    last_seal = Clock.now clock;
  index = Hashtbl.create 256;
  }

let add_entry t ~chain payload =
  let digest = Hash.digest_string (chain ^ ":" ^ Bytes.to_string payload) in
  t.pending <- (chain, digest) :: t.pending;
  t.entries <- t.entries + 1;
  t.bytes <- t.bytes + Bytes.length payload + 32;
  digest

let seal_directory_block t =
  if t.pending = [] then invalid_arg "Factom_sim.seal_directory_block: empty";
  let by_chain = Hashtbl.create 8 in
  List.iter
    (fun (chain, digest) ->
      match Hashtbl.find_opt by_chain chain with
      | Some r -> r := digest :: !r
      | None -> Hashtbl.replace by_chain chain (ref [ digest ]))
    t.pending;
  let chains =
    Hashtbl.fold
      (fun chain digests acc -> (chain, Merkle_tree.build (List.rev !digests)) :: acc)
      by_chain []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let directory_tree =
    Merkle_tree.build (List.map (fun (_, tree) -> Merkle_tree.root tree) chains)
  in
  let height = List.length t.blocks in
  let anchor_index =
    Bim.append t.bitcoin ~timestamp:(Clock.now t.clock)
      (Merkle_tree.root directory_tree)
  in
  Bim.flush t.bitcoin;
  let block =
    { height; chains; directory_tree; anchor_index;
      timestamp = Clock.now t.clock }
  in
  t.blocks <- block :: t.blocks;
  List.iter
    (fun (chain, digest) ->
      Hashtbl.replace t.index (Hash.to_hex digest) (height, chain))
    t.pending;
  t.pending <- [];
  t.bytes <- t.bytes + 256 (* entry/directory block headers *) + 80;
  t.last_seal <- Clock.now t.clock;
  height

let tick t =
  if
    t.pending <> []
    && Int64.compare (Int64.sub (Clock.now t.clock) t.last_seal)
         t.anchor_interval_us
       >= 0
  then ignore (seal_directory_block t)

let directory_blocks t = List.length t.blocks
let entry_count t = t.entries

type proof = {
  entry_path : Proof.path; (* entry -> entry block root *)
  chain_position : int; (* entry block root position in directory tree *)
  directory_path : Proof.path; (* entry block root -> directory root *)
  bitcoin_proof : Bim.proof;
  height : int;
}

let find_block t height = List.nth t.blocks (List.length t.blocks - 1 - height)

let leaf_index tree target =
  let n = Merkle_tree.size tree in
  let rec go i =
    if i >= n then None
    else if
      Proof.verify ~leaf:target ~root:(Merkle_tree.root tree)
        (Merkle_tree.prove tree i)
    then Some i
    else go (i + 1)
  in
  go 0

let prove_entry t ~chain digest =
  match Hashtbl.find_opt t.index (Hash.to_hex digest) with
  | None -> None
  | Some (height, chain') when chain = chain' -> (
      let block = find_block t height in
      match List.assoc_opt chain block.chains with
      | None -> None
      | Some entry_tree -> (
          match leaf_index entry_tree digest with
          | None -> None
          | Some i ->
              let entry_path = Merkle_tree.prove entry_tree i in
              let chain_position =
                let rec pos k = function
                  | [] -> -1
                  | (c, _) :: rest -> if c = chain then k else pos (k + 1) rest
                in
                pos 0 block.chains
              in
              let directory_path =
                Merkle_tree.prove block.directory_tree chain_position
              in
              Some
                { entry_path; chain_position; directory_path;
                  bitcoin_proof = Bim.prove t.bitcoin block.anchor_index;
                  height }))
  | Some _ -> None

let verify_entry t ~chain digest proof =
  ignore chain;
  if proof.height < 0 || proof.height >= List.length t.blocks then false
  else begin
    let entry_block_root = Proof.apply digest proof.entry_path in
    let directory_root = Proof.apply entry_block_root proof.directory_path in
    let headers = Array.of_list (Bim.headers t.bitcoin) in
    Bim.verify ~headers ~leaf:directory_root proof.bitcoin_proof
  end

let anchored_time t ~chain digest =
  match Hashtbl.find_opt t.index (Hash.to_hex digest) with
  | Some (height, chain') when chain = chain' ->
      Some (find_block t height).timestamp
  | Some _ | None -> None

let storage_bytes t = t.bytes + Bim.header_bytes t.bitcoin
