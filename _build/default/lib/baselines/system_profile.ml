type efficiency = High | Medium | Low

type profile = {
  system : string;
  trusted_dependency : string;
  dasein_support : string;
  verify_efficiency : efficiency;
  storage_overhead : string;
  verifiable_mutation : bool;
  verifiable_n_lineage : bool;
  implemented : string option;
}

let all =
  [
    {
      system = "LedgerDB";
      trusted_dependency = "TSA (non-LSP)";
      dasein_support = "what-when-who";
      verify_efficiency = High;
      storage_overhead = "Lowest";
      verifiable_mutation = true;
      verifiable_n_lineage = true;
      implemented = Some "Ledger_core.Ledger";
    };
    {
      system = "SQL Ledger";
      trusted_dependency = "LSP & Storage";
      dasein_support = "what-when-who";
      verify_efficiency = High;
      storage_overhead = "Medium";
      verifiable_mutation = true;
      verifiable_n_lineage = false;
      implemented = Some "Ledger_baselines.Sql_ledger_sim";
    };
    {
      system = "QLDB";
      trusted_dependency = "LSP";
      dasein_support = "what";
      verify_efficiency = Medium;
      storage_overhead = "Medium";
      verifiable_mutation = false;
      verifiable_n_lineage = false;
      implemented = Some "Ledger_baselines.Qldb_sim";
    };
    {
      system = "ProvenDB";
      trusted_dependency = "LSP & Bitcoin";
      dasein_support = "what-when (bounded)";
      verify_efficiency = Medium;
      storage_overhead = "Medium";
      verifiable_mutation = true;
      verifiable_n_lineage = false;
      implemented = Some "Ledger_baselines.Provendb_sim";
    };
    {
      system = "Hyperledger";
      trusted_dependency = "Consortium";
      dasein_support = "what-who";
      verify_efficiency = Low;
      storage_overhead = "High";
      verifiable_mutation = false;
      verifiable_n_lineage = false;
      implemented = Some "Ledger_baselines.Fabric_sim";
    };
    {
      system = "Factom";
      trusted_dependency = "Bitcoin";
      dasein_support = "what-when-who";
      verify_efficiency = Medium;
      storage_overhead = "Highest";
      verifiable_mutation = false;
      verifiable_n_lineage = false;
      implemented = Some "Ledger_baselines.Factom_sim";
    };
  ]

let efficiency_to_string = function
  | High -> "High"
  | Medium -> "Medium"
  | Low -> "Low"

let header =
  [ "System"; "Trusted Dependency"; "Dasein Support"; "Verify-Efficiency";
    "Storage Overhead"; "Verifiable Mutation"; "Verifiable N-lineage";
    "Implemented as" ]

let to_row p =
  [
    p.system;
    p.trusted_dependency;
    p.dasein_support;
    efficiency_to_string p.verify_efficiency;
    p.storage_overhead;
    (if p.verifiable_mutation then "yes" else "no");
    (if p.verifiable_n_lineage then "yes" else "no");
    Option.value p.implemented ~default:"(paper row)";
  ]
