lib/baselines/system_profile.mli:
