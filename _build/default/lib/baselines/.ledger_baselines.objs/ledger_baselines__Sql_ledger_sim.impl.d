lib/baselines/sql_ledger_sim.ml: Bytes Clock Hash Hashtbl Ledger_crypto Ledger_merkle Ledger_storage List Option Printf
