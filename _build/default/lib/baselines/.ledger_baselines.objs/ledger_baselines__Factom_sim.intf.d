lib/baselines/factom_sim.mli: Clock Hash Ledger_crypto Ledger_storage
