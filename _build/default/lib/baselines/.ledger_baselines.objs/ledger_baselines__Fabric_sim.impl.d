lib/baselines/fabric_sim.ml: Array Bim Bytes Clock Hash Hashtbl Int64 Ledger_crypto Ledger_merkle Ledger_storage List Option
