lib/baselines/sql_ledger_sim.mli: Clock Hash Ledger_crypto Ledger_storage
