lib/baselines/fabric_sim.mli: Clock Ledger_storage
