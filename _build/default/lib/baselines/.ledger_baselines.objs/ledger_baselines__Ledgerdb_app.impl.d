lib/baselines/ledgerdb_app.ml: Clock Crypto_profile Ecdsa Int64 Latency_model Ledger Ledger_core Ledger_crypto Ledger_storage Roles
