lib/baselines/provendb_sim.ml: Bytes Clock Hash Hashtbl Ledger_crypto Ledger_storage Ledger_timenotary Option Pegging
