lib/baselines/system_profile.ml: Option
