lib/baselines/provendb_sim.mli: Clock Hash Ledger_crypto Ledger_storage
