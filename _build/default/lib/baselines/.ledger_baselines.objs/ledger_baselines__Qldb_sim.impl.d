lib/baselines/qldb_sim.ml: Accumulator Bytes Clock Hash Hashtbl Ledger_crypto Ledger_merkle Ledger_storage List Option Printf Proof
