lib/baselines/factom_sim.ml: Array Bim Bytes Clock Hash Hashtbl Int64 Ledger_crypto Ledger_merkle Ledger_storage List Merkle_tree Proof String
