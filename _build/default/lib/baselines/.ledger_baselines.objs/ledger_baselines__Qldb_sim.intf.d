lib/baselines/qldb_sim.mli: Clock Ledger_storage
