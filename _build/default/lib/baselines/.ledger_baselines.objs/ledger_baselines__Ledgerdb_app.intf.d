lib/baselines/ledgerdb_app.mli: Clock Ledger Ledger_core Ledger_storage
