(** A Hyperledger-Fabric-style permissioned blockchain (paper §VI-D,
    Fig. 10 baseline).

    The execute–order–validate pipeline is modeled structurally:

    - {e endorsement}: the configured endorser set simulates chaincode
      execution and each endorser signs the read/write set;
    - {e ordering}: a Kafka-style ordering service batches transactions
      (cut by size or timeout) — its per-transaction service time is the
      ~2K TPS throughput ceiling the paper measures;
    - {e validation/commit}: each transaction is re-checked (endorsement
      policy, MVCC) and written to the state DB; validation cost grows
      with state size (LevelDB lookups), giving the gentle TPS decline of
      Fig. 10(a);
    - blocks carry a Merkle root over their transactions and are hash
      chained, so data integrity checks exist but all {e when}/{e who}
      facts rest on the consortium (Table I).

    Reads ([GetState]) cost one state-DB random I/O; an application-level
    "verification" is a chaincode query — it pays the endorsement round
    but reads the whole key history in one sequential sweep (the paper's
    observation that Fabric does "nearly a single random I/O for the
    entire clue", which is why it overtakes LedgerDB beyond ~50
    entries in Fig. 10(c)). *)

open Ledger_storage

type t

type config = {
  endorsers : int;
  endorsement_ms : float;  (** per endorsement round (parallel) *)
  batch_size : int;
  batch_timeout_ms : float;
  ordering_per_tx_us : float;  (** ordering service time per tx *)
  validation_base_us : float;
  validation_log_factor_us : float;  (** extra per log2(state size) *)
  state_read_ms : float;  (** one state-DB random read *)
  sig_verify_us : float;
}

val default_config : config

val create : ?config:config -> clock:Clock.t -> unit -> t

val submit : t -> key:string -> bytes -> unit
(** Endorse (capturing the key's MVCC read version), order, validate,
    commit.  Commits when the batch cuts. *)

val endorse : t -> key:string -> int
(** Run the endorsement phase only; returns the read version captured by
    the chaincode simulation.  Pair with {!submit_endorsed} to model
    concurrent clients racing on one key. *)

val submit_endorsed : t -> key:string -> read_version:int -> bytes -> unit
(** Order + validate a previously endorsed transaction; aborts (MVCC
    conflict) if the key's version moved since endorsement. *)

val aborted : t -> int
(** Transactions dropped by MVCC validation. *)

val submit_pipelined : t -> key:string -> bytes -> unit
(** Closed-loop throughput variant: charges only the serial pipeline
    section (ordering + validation/commit); endorsement overlaps across
    clients. *)

val flush : t -> unit
(** Cut the current batch (timeout path). *)

val get_state : t -> key:string -> bytes option
val verify_key : t -> key:string -> bool
(** Chaincode-based verification of one notarized document. *)

val verify_history : t -> key:string -> int
(** Lineage verification of a key's full history via chaincode; returns
    the number of versions checked (0 = unknown key). *)

val version_count : t -> key:string -> int
val block_count : t -> int
val size : t -> int
(** Committed transactions. *)

(** {1 Transaction existence (the rigorous *what* of Table I)} *)

type tx_proof

val prove_tx : t -> tx_index:int -> tx_proof option
(** SPV proof for the [tx_index]-th committed transaction (flushes the
    open block first). *)

val verify_tx : t -> key:string -> data:bytes -> tx_proof -> bool
(** Verify that (key, data) was committed, against the header chain. *)

val verify_history_server : t -> key:string -> int
(** Service-side cost only (state read + sweep), excluding the consensus
    invocation — the unit measured in throughput sweeps. *)
