(** The qualitative comparison matrix of Table I.

    Each row describes a ledger system along the paper's six dimensions.
    The LedgerDB, QLDB-style, Fabric-style and ProvenDB-style rows are
    backed by implementations in this repository ({!implemented}); the
    SQL Ledger and Factom rows are reproduced from the paper for
    completeness. *)

type efficiency = High | Medium | Low

type profile = {
  system : string;
  trusted_dependency : string;
  dasein_support : string;  (** which of what/when/who are rigorous *)
  verify_efficiency : efficiency;
  storage_overhead : string;
  verifiable_mutation : bool;
  verifiable_n_lineage : bool;
  implemented : string option;  (** backing module in this repo, if any *)
}

val all : profile list
(** Rows in the paper's order. *)

val efficiency_to_string : efficiency -> string
val to_row : profile -> string list
(** For {!Ledger_bench_util.Table.print_table}. *)

val header : string list
