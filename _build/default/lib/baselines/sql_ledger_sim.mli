(** An Azure-SQL-Ledger-style system (Table I row; §VII related work).

    Updatable relational state with an append-only history of
    transactions, hash-chained into blocks; {e forward integrity}: the
    database digest is periodically published to trusted storage outside
    the system, and verification replays history against the latest
    published digest.  Consequences faithfully modeled:

    - tampering {e after} a digest publication is detected;
    - tampering in the window {e before} the digest leaves the system is
      not — the trust gap LedgerDB's two-way TSA pegging closes
      (Table I: trusted dependency "LSP & Storage"). *)

open Ledger_crypto
open Ledger_storage

type t

val create : ?block_size:int -> clock:Clock.t -> unit -> t

val execute : t -> key:string -> bytes -> unit
(** An UPDATE: current state changes, the transaction lands in history. *)

val get : t -> key:string -> bytes option
val history_length : t -> int
val block_count : t -> int

val publish_digest : t -> Hash.t
(** Push the current ledger digest to the external trusted storage;
    returns the digest published. *)

val published_digests : t -> Hash.t list
(** What the trusted storage holds (newest first). *)

val verify : t -> [ `Ok | `Tampered | `No_published_digest ]
(** Replay the history chain and compare with the newest published
    digest. *)

val ledger_digest : t -> Hash.t
(** The current chain head (as the server computes it). *)

module Unsafe : sig
  val rewrite_history : t -> index:int -> key:string -> bytes -> unit
  (** In-place history rewrite by a malicious operator. *)
end
