(** LedgerDB as an application backend for the §VI-D comparisons.

    Wraps {!Ledger_core.Ledger} with the two applications of the paper —
    data notarization (unique document ids) and data lineage (clue-keyed
    version chains) — and with deployment cost profiles:

    - {!create_local}: the in-cluster deployment compared against
      Hyperledger Fabric (Fig. 10);
    - {!create_cloud}: the public-cloud service deployment compared
      against QLDB (Table II) — every API call pays a cloud round trip.

    Verification cost structure (the load-bearing part): the server
    resolves the clue through CM-Tree1, performs {e one random I/O per
    entry} of the clue's CM-Tree2 (the behaviour that gives Fabric the
    >50-entry crossover in Fig. 10(c)) and ships a constant-size batch
    proof that the client replays locally. *)

open Ledger_storage
open Ledger_core

type t

val create_local : clock:Clock.t -> t
val create_cloud : clock:Clock.t -> t
val ledger : t -> Ledger.t
val clock : t -> Clock.t

(** {1 Notarization} *)

val insert : t -> id:string -> bytes -> unit

val insert_pipelined : t -> id:string -> bytes -> unit
(** Closed-loop throughput variant: only server-side service time is
    charged (clients pipeline requests over the connection). *)

val retrieve : t -> id:string -> bytes option
val verify : t -> id:string -> bool

(** {1 Lineage} *)

val put_version : t -> key:string -> bytes -> unit
val version_count : t -> key:string -> int
val verify_lineage : t -> key:string -> bool

val verify_lineage_server : t -> key:string -> bool
(** Server-side service work only (no client RTT) — the unit measured in
    the Fig. 10(c) throughput sweep. *)

val size : t -> int
