(** The client ⇄ proxy ⇄ server protocol of Fig. 1, over a byte-level
    message boundary.

    {!Client} builds signed, encoded requests and interprets encoded
    responses without ever holding a reference to the server's state;
    {!handle} is the whole server: decode → dispatch → encode.  Tests and
    examples drive the two ends through [bytes] alone, proving that every
    proof object survives the wire. *)

open Ledger_crypto
open Ledger_cmtree
open Ledger_merkle

type request =
  | Append of {
      member_id : Hash.t;
      payload : bytes;
      clues : string list;
      client_ts : int64;
      nonce : int;
      signature : Ecdsa.signature;
    }
  | Get_payload of { jsn : int }
  | Get_proof of { jsn : int }
  | Get_receipt of { jsn : int }
  | Get_clue_proof of { clue : string; first : int option; last : int option }
  | Get_commitment
  | Get_extension of { old_size : int }
  | Get_journal of { jsn : int }
  | Get_block of { height : int }
  | Get_members
  | Get_checkpoint

type response =
  | Receipt_r of Receipt.t
  | Payload_r of bytes option
  | Proof_r of Fam.proof
  | Clue_proof_r of Cm_tree.clue_proof option
  | Commitment_r of { commitment : Hash.t; size : int }
  | Extension_r of Fam.extension_proof
  | Journal_r of { tx : Hash.t; encoded : bytes }
      (** retained leaf + {!Journal_codec} encoding (payload reflects
          occult/purge erasure) *)
  | Block_r of Block.t
  | Members_r of (string * string * bytes) list
      (** (name, role tag, 64-byte public key) *)
  | Checkpoint_r of {
      name : string;
      size : int;
      block_count : int;
      commitment : Hash.t;
      clue_root : Hash.t;
      nonce : int;
      pseudo_genesis : int option;
    }
  | Error_r of string

val encode_request : request -> bytes
val decode_request : bytes -> request option
val encode_response : response -> bytes
val decode_response : bytes -> response option

val w_receipt : Wire.writer -> Receipt.t -> unit
val r_receipt : Wire.reader -> Receipt.t

val handle : Ledger.t -> bytes -> bytes
(** The server: malformed input or failed dispatch yields an encoded
    {!Error_r}; this function never raises. *)

(** Client-side request building and response interpretation. *)
module Client : sig
  type t

  val create :
    ledger_uri:string ->
    member:Roles.member ->
    priv:Ecdsa.private_key ->
    t

  val make_append : t -> ?clues:string list -> client_ts:int64 -> bytes -> bytes
  (** Sign the request locally (π_c) and encode it.  The nonce is
      maintained per client. *)

  val make_get_proof : jsn:int -> bytes
  val make_get_payload : jsn:int -> bytes
  val make_get_receipt : jsn:int -> bytes
  val make_get_clue_proof : clue:string -> ?first:int -> ?last:int -> unit -> bytes
  val make_get_commitment : unit -> bytes
  val make_get_extension : old_size:int -> bytes
  val make_get_journal : jsn:int -> bytes
  val make_get_block : height:int -> bytes
  val make_get_members : unit -> bytes
  val make_get_checkpoint : unit -> bytes

  val parse : bytes -> response option
end
