(** LSP receipts — the server's non-repudiation proof π_s (paper §III-C).

    A receipt packs the three digests (request-hash, tx-hash, block-hash)
    with the jsn and server timestamp, signed by the LSP.  Clients keep
    receipts externally: a later repudiation attempt by the LSP (deleting
    or rewriting the journal) is defeated by presenting the receipt. *)

open Ledger_crypto

type t = {
  jsn : int;
  request_hash : Hash.t;
  tx_hash : Hash.t;
  block_hash : Hash.t;  (** {!Hash.zero} while the block is still open *)
  timestamp : int64;
  lsp_sig : Ecdsa.signature;
}

val signing_digest :
  jsn:int ->
  request_hash:Hash.t ->
  tx_hash:Hash.t ->
  block_hash:Hash.t ->
  timestamp:int64 ->
  Hash.t

val make :
  lsp_priv:Ecdsa.private_key ->
  jsn:int ->
  request_hash:Hash.t ->
  tx_hash:Hash.t ->
  block_hash:Hash.t ->
  timestamp:int64 ->
  t

val verify : lsp_pub:Ecdsa.public_key -> t -> bool
val is_final : t -> bool
(** A receipt is final once it carries a real block hash. *)
