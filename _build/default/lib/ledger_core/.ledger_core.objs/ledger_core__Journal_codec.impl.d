lib/ledger_core/journal_codec.ml: Buffer Bytes Char Ecdsa Hash Int64 Journal Ledger_crypto Ledger_timenotary List String Tsa
