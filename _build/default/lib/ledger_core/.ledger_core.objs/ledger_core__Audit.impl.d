lib/ledger_core/audit.ml: Block Ecdsa Fam Format Hash Int64 Journal Ledger Ledger_crypto Ledger_merkle Ledger_timenotary List Logs Merkle_tree Option Printf Receipt Roles T_ledger Tsa Unix
