lib/ledger_core/service.mli: Block Cm_tree Ecdsa Fam Hash Ledger Ledger_cmtree Ledger_crypto Ledger_merkle Receipt Roles Wire
