lib/ledger_core/verify_api.mli: Format Hash Ledger Ledger_crypto Receipt
