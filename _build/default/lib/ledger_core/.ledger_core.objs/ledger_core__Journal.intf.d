lib/ledger_core/journal.mli: Ecdsa Format Hash Ledger_crypto Ledger_timenotary Tsa
