lib/ledger_core/audit.mli: Format Ledger Receipt
