lib/ledger_core/replica.mli: Clock Ledger Ledger_storage Ledger_timenotary T_ledger Tsa
