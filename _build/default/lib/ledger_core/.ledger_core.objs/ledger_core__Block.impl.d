lib/ledger_core/block.ml: Buffer Hash Int64 Ledger_crypto
