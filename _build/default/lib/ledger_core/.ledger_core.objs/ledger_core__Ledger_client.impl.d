lib/ledger_core/ledger_client.ml: Ecdsa Fam Hash Ledger_crypto Ledger_merkle List Receipt
