lib/ledger_core/service.ml: Block Bytes Cm_tree Ecdsa Fam Hash Journal Journal_codec Ledger Ledger_cmtree Ledger_crypto Ledger_merkle List Option Proof_codec Receipt Roles Wire
