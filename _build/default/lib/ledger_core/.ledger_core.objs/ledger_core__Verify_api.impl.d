lib/ledger_core/verify_api.ml: Format Hash Journal Ledger Ledger_crypto List Printf Receipt
