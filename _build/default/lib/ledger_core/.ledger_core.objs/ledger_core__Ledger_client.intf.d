lib/ledger_core/ledger_client.mli: Ecdsa Fam Hash Ledger_crypto Ledger_merkle Receipt
