lib/ledger_core/crypto_profile.mli: Clock Ecdsa Hash Ledger_crypto Ledger_storage
