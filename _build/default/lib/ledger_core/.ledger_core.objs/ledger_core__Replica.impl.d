lib/ledger_core/replica.ml: Block Bytes Char Filename Hash Ledger Ledger_crypto List Printf Service String Sys
