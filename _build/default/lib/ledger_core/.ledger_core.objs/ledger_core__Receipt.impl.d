lib/ledger_core/receipt.ml: Buffer Ecdsa Hash Int64 Ledger_crypto
