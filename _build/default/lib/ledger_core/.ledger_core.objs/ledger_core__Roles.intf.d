lib/ledger_core/roles.mli: Ecdsa Hash Ledger_crypto
