lib/ledger_core/crypto_profile.ml: Bytes Clock Ecdsa Hash Hmac_sha256 Int64 Ledger_crypto Ledger_storage
