lib/ledger_core/journal.ml: Buffer Bytes Ecdsa Format Hash Int64 Ledger_crypto Ledger_timenotary List Tsa
