lib/ledger_core/journal_codec.mli: Hash Journal Ledger_crypto
