lib/ledger_core/receipt.mli: Ecdsa Hash Ledger_crypto
