lib/ledger_core/roles.ml: Ecdsa Hash Hashtbl Ledger_crypto List String
