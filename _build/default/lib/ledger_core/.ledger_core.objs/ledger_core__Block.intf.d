lib/ledger_core/block.mli: Hash Ledger_crypto
