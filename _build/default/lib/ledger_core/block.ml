open Ledger_crypto

type t = {
  height : int;
  start_jsn : int;
  count : int;
  prev_hash : Hash.t;
  journal_commitment : Hash.t;
  clue_root : Hash.t;
  world_state_root : Hash.t;
  tx_root : Hash.t;
  timestamp : int64;
}

let hash t =
  let buf = Buffer.create 200 in
  Buffer.add_string buf "block:";
  Buffer.add_string buf (string_of_int t.height);
  Buffer.add_string buf (string_of_int t.start_jsn);
  Buffer.add_string buf (string_of_int t.count);
  Buffer.add_bytes buf (Hash.to_bytes t.prev_hash);
  Buffer.add_bytes buf (Hash.to_bytes t.journal_commitment);
  Buffer.add_bytes buf (Hash.to_bytes t.clue_root);
  Buffer.add_bytes buf (Hash.to_bytes t.world_state_root);
  Buffer.add_bytes buf (Hash.to_bytes t.tx_root);
  Buffer.add_string buf (Int64.to_string t.timestamp);
  Hash.digest_bytes (Buffer.to_bytes buf)

let links_to prev next =
  next.height = prev.height + 1
  && Hash.equal next.prev_hash (hash prev)
  && next.start_jsn = prev.start_jsn + prev.count
