(** Journals — the ledger's atomic records (paper Fig. 2).

    Every operation lands as a journal with a unique incremental jsn.
    Besides normal payload journals there are:

    - {e time journals} anchoring TSA or T-Ledger evidence (§III-B);
    - {e purge journals} and their doubly-linked {e pseudo-genesis}
      (§III-A2);
    - {e occult journals} retaining only the hidden journal's digest
      (§III-A3, Protocol 2).

    Three digests matter (§III-C): the {e request-hash} the client signs
    (π_c), the {e tx-hash} the server derives for the whole journal (the
    accumulator leaf), and the block-hash computed at commit. *)

open Ledger_crypto
open Ledger_timenotary

type time_evidence =
  | Direct_tsa of Tsa.token
      (** two-way pegging straight to a TSA (costly). *)
  | Via_t_ledger of { entry_index : int; client_ts : int64; digest : Hash.t }
      (** bottom-layer Protocol 4 submission, referenced by T-Ledger index. *)

type purge_info = {
  purge_upto : int;  (** journals with jsn < purge_upto were erased *)
  pseudo_genesis_jsn : int;
  survivors : int list;  (** milestone journals kept in the survival stream *)
}

type genesis_snapshot = {
  replaced_purge_jsn : int;  (** back-link to the purge journal *)
  fam_commitment : Hash.t;  (** accumulator state at the purge point *)
  clue_root : Hash.t;  (** CM-Tree1 root at the purge point *)
  member_roster : Hash.t;  (** digest of the membership snapshot *)
}

type kind =
  | Normal
  | Time of time_evidence
  | Purge of purge_info
  | Occult of { target_jsn : int; retained_hash : Hash.t }
  | Pseudo_genesis of genesis_snapshot

type t = {
  jsn : int;
  kind : kind;
  client_id : Hash.t;  (** issuing member (or LSP for system journals) *)
  payload : bytes;
  clues : string list;
  client_ts : int64;
  server_ts : int64;
  nonce : int;  (** request nonce, needed to re-derive the request hash *)
  request_hash : Hash.t;
  client_sig : Ecdsa.signature option;  (** π_c *)
  cosigners : (Hash.t * Ecdsa.signature) list;
      (** additional signer id/signature pairs (multi-signed journals,
          purge/occult prerequisites). *)
}

val request_digest :
  ledger_uri:string ->
  kind_tag:string ->
  payload:bytes ->
  clues:string list ->
  client_ts:int64 ->
  nonce:int ->
  Hash.t
(** The digest a client signs before submission — binds payload, metadata
    and a nonce (paper §III-C). *)

val tx_hash : t -> Hash.t
(** Server-side digest of the full journal: the accumulator leaf.  For an
    occulted journal's {e replacement} record this is the retained hash
    (Protocol 2 is applied by the ledger, not here). *)

val kind_tag : kind -> string
val is_time_journal : t -> bool
val pp_kind : Format.formatter -> kind -> unit
