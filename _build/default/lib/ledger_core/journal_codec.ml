open Ledger_crypto
open Ledger_timenotary

(* Primitive writers: varint-free fixed-width framing for simplicity and
   total decoding. *)

let w_int buf v =
  for i = 7 downto 0 do
    Buffer.add_char buf (Char.chr ((v lsr (i * 8)) land 0xFF))
  done

let w_int64 buf v =
  for i = 7 downto 0 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (i * 8)) land 0xFF))
  done

let w_bytes buf b =
  w_int buf (Bytes.length b);
  Buffer.add_bytes buf b

let w_string buf s = w_bytes buf (Bytes.unsafe_of_string s)
let w_hash buf h = Buffer.add_bytes buf (Hash.to_bytes h)
let w_sig buf s = Buffer.add_bytes buf (Ecdsa.signature_to_bytes s)

type reader = { data : bytes; mutable pos : int }

exception Corrupt

let need r n = if r.pos + n > Bytes.length r.data then raise Corrupt

let r_int r =
  need r 8;
  let v = ref 0 in
  for _ = 1 to 8 do
    v := (!v lsl 8) lor Char.code (Bytes.get r.data r.pos);
    r.pos <- r.pos + 1
  done;
  !v

let r_int64 r =
  need r 8;
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8)
           (Int64.of_int (Char.code (Bytes.get r.data r.pos)));
    r.pos <- r.pos + 1
  done;
  !v

let r_bytes r =
  let len = r_int r in
  if len < 0 then raise Corrupt;
  need r len;
  let b = Bytes.sub r.data r.pos len in
  r.pos <- r.pos + len;
  b

let r_string r = Bytes.to_string (r_bytes r)

let r_hash r =
  need r 32;
  let h = Hash.of_bytes (Bytes.sub r.data r.pos 32) in
  r.pos <- r.pos + 32;
  h

let r_sig r =
  need r 64;
  match Ecdsa.signature_of_bytes (Bytes.sub r.data r.pos 64) with
  | Some s ->
      r.pos <- r.pos + 64;
      s
  | None -> raise Corrupt

(* --- kinds ------------------------------------------------------------- *)

let w_kind buf = function
  | Journal.Normal -> Buffer.add_char buf 'N'
  | Journal.Time (Journal.Direct_tsa token) ->
      Buffer.add_char buf 'T';
      w_hash buf token.Tsa.digest;
      w_int64 buf token.Tsa.timestamp;
      w_hash buf token.Tsa.tsa_id;
      w_sig buf token.Tsa.signature
  | Journal.Time (Journal.Via_t_ledger { entry_index; client_ts; digest }) ->
      Buffer.add_char buf 'L';
      w_int buf entry_index;
      w_int64 buf client_ts;
      w_hash buf digest
  | Journal.Purge { purge_upto; pseudo_genesis_jsn; survivors } ->
      Buffer.add_char buf 'P';
      w_int buf purge_upto;
      w_int buf pseudo_genesis_jsn;
      w_int buf (List.length survivors);
      List.iter (w_int buf) survivors
  | Journal.Occult { target_jsn; retained_hash } ->
      Buffer.add_char buf 'O';
      w_int buf target_jsn;
      w_hash buf retained_hash
  | Journal.Pseudo_genesis
      { replaced_purge_jsn; fam_commitment; clue_root; member_roster } ->
      Buffer.add_char buf 'G';
      w_int buf replaced_purge_jsn;
      w_hash buf fam_commitment;
      w_hash buf clue_root;
      w_hash buf member_roster

let r_kind r =
  need r 1;
  let tag = Bytes.get r.data r.pos in
  r.pos <- r.pos + 1;
  match tag with
  | 'N' -> Journal.Normal
  | 'T' ->
      let digest = r_hash r in
      let timestamp = r_int64 r in
      let tsa_id = r_hash r in
      let signature = r_sig r in
      Journal.Time (Journal.Direct_tsa { Tsa.digest; timestamp; tsa_id; signature })
  | 'L' ->
      let entry_index = r_int r in
      let client_ts = r_int64 r in
      let digest = r_hash r in
      Journal.Time (Journal.Via_t_ledger { entry_index; client_ts; digest })
  | 'P' ->
      let purge_upto = r_int r in
      let pseudo_genesis_jsn = r_int r in
      let n = r_int r in
      if n < 0 || n > 1_000_000 then raise Corrupt;
      let survivors = List.init n (fun _ -> r_int r) in
      Journal.Purge { purge_upto; pseudo_genesis_jsn; survivors }
  | 'O' ->
      let target_jsn = r_int r in
      let retained_hash = r_hash r in
      Journal.Occult { target_jsn; retained_hash }
  | 'G' ->
      let replaced_purge_jsn = r_int r in
      let fam_commitment = r_hash r in
      let clue_root = r_hash r in
      let member_roster = r_hash r in
      Journal.Pseudo_genesis
        { replaced_purge_jsn; fam_commitment; clue_root; member_roster }
  | _ -> raise Corrupt

(* --- top level ---------------------------------------------------------- *)

let magic = "LDBJ1"

let encode (j : Journal.t) =
  let buf = Buffer.create (Bytes.length j.Journal.payload + 256) in
  Buffer.add_string buf magic;
  w_int buf j.Journal.jsn;
  w_kind buf j.Journal.kind;
  w_hash buf j.Journal.client_id;
  w_bytes buf j.Journal.payload;
  w_int buf (List.length j.Journal.clues);
  List.iter (w_string buf) j.Journal.clues;
  w_int64 buf j.Journal.client_ts;
  w_int64 buf j.Journal.server_ts;
  w_int buf j.Journal.nonce;
  w_hash buf j.Journal.request_hash;
  (match j.Journal.client_sig with
  | Some s ->
      Buffer.add_char buf '\001';
      w_sig buf s
  | None -> Buffer.add_char buf '\000');
  w_int buf (List.length j.Journal.cosigners);
  List.iter
    (fun (id, s) ->
      w_hash buf id;
      w_sig buf s)
    j.Journal.cosigners;
  Buffer.to_bytes buf

let decode data =
  try
    let r = { data; pos = 0 } in
    need r (String.length magic);
    if Bytes.sub_string data 0 (String.length magic) <> magic then raise Corrupt;
    r.pos <- String.length magic;
    let jsn = r_int r in
    let kind = r_kind r in
    let client_id = r_hash r in
    let payload = r_bytes r in
    let n_clues = r_int r in
    if n_clues < 0 || n_clues > 1_000_000 then raise Corrupt;
    let clues = List.init n_clues (fun _ -> r_string r) in
    let client_ts = r_int64 r in
    let server_ts = r_int64 r in
    let nonce = r_int r in
    let request_hash = r_hash r in
    need r 1;
    let has_sig = Bytes.get r.data r.pos in
    r.pos <- r.pos + 1;
    let client_sig =
      match has_sig with
      | '\001' -> Some (r_sig r)
      | '\000' -> None
      | _ -> raise Corrupt
    in
    let n_cosigners = r_int r in
    if n_cosigners < 0 || n_cosigners > 10_000 then raise Corrupt;
    let cosigners =
      List.init n_cosigners (fun _ ->
          let id = r_hash r in
          let s = r_sig r in
          (id, s))
    in
    if r.pos <> Bytes.length data then raise Corrupt;
    Some
      {
        Journal.jsn;
        kind;
        client_id;
        payload;
        clues;
        client_ts;
        server_ts;
        nonce;
        request_hash;
        client_sig;
        cosigners;
      }
  with Corrupt -> None

let encoded_size j = Bytes.length (encode j)
let digest j = Hash.digest_bytes (encode j)
