open Ledger_crypto

let request transport encoded =
  match Service.decode_response (transport encoded) with
  | Some resp -> resp
  | None -> failwith "replica: undecodable response"

let output_u64 oc v =
  for i = 7 downto 0 do
    output_char oc (Char.chr ((v lsr (i * 8)) land 0xFF))
  done

let pull ~transport ?(config = Ledger.default_config) ?t_ledger ?tsa ~clock
    ~scratch_dir () =
  try
    (* 1. the announced checkpoint pins what we must reproduce *)
    let name, size, block_count, commitment, clue_root, nonce, pseudo_genesis =
      match request transport (Service.Client.make_get_checkpoint ()) with
      | Service.Checkpoint_r
          { name; size; block_count; commitment; clue_root; nonce;
            pseudo_genesis } ->
          (name, size, block_count, commitment, clue_root, nonce, pseudo_genesis)
      | Service.Error_r e -> failwith ("replica: checkpoint refused: " ^ e)
      | _ -> failwith "replica: unexpected checkpoint response"
    in
    if name <> config.Ledger.name then
      failwith
        (Printf.sprintf "replica: service is '%s' but config says '%s'" name
           config.Ledger.name);
    if not (Sys.file_exists scratch_dir) then Sys.mkdir scratch_dir 0o755;
    let in_dir f = Filename.concat scratch_dir f in
    let with_out file f =
      let oc = open_out_bin (in_dir file) in
      (try f oc with e -> close_out_noerr oc; raise e);
      close_out oc
    in
    (* 2. membership *)
    with_out "members.ldb" (fun oc ->
        match request transport (Service.Client.make_get_members ()) with
        | Service.Members_r members ->
            List.iter
              (fun (member_name, role, pub) ->
                let hex =
                  String.concat ""
                    (List.init (Bytes.length pub) (fun i ->
                         Printf.sprintf "%02x" (Char.code (Bytes.get pub i))))
                in
                Printf.fprintf oc "%s\t%s\t%s\n" role hex member_name)
              members
        | _ -> failwith "replica: unexpected members response");
    (* 3. every journal, with its retained leaf *)
    with_out "journals.ldb" (fun oc ->
        for jsn = 0 to size - 1 do
          match request transport (Service.Client.make_get_journal ~jsn) with
          | Service.Journal_r { tx; encoded } ->
              output_bytes oc (Hash.to_bytes tx);
              output_u64 oc (Bytes.length encoded);
              output_bytes oc encoded
          | Service.Error_r e ->
              failwith (Printf.sprintf "replica: journal %d refused: %s" jsn e)
          | _ -> failwith "replica: unexpected journal response"
        done);
    (* 4. every sealed block *)
    with_out "blocks.ldb" (fun oc ->
        for height = 0 to block_count - 1 do
          match request transport (Service.Client.make_get_block ~height) with
          | Service.Block_r b ->
              Printf.fprintf oc "%d %d %d %s %s %s %s %s %Ld\n" b.Block.height
                b.Block.start_jsn b.Block.count
                (Hash.to_hex b.Block.prev_hash)
                (Hash.to_hex b.Block.journal_commitment)
                (Hash.to_hex b.Block.clue_root)
                (Hash.to_hex b.Block.world_state_root)
                (Hash.to_hex b.Block.tx_root)
                b.Block.timestamp
          | _ -> failwith "replica: unexpected block response"
        done);
    (* 5. checkpoint metadata; the loader re-derives everything and
       compares against these values *)
    with_out "meta.ldb" (fun oc ->
        Printf.fprintf oc
          "name=%s\nsize=%d\nnonce=%d\ncommitment=%s\nclue_root=%s\npseudo_genesis=%s\n"
          name size nonce
          (if size = 0 then "" else Hash.to_hex commitment)
          (Hash.to_hex clue_root)
          (match pseudo_genesis with Some j -> string_of_int j | None -> "-"));
    with_out "survivors.ldb" (fun _ -> () (* not replicated *));
    Ledger.load ~config ?t_ledger ?tsa ~clock ~dir:scratch_dir ()
  with
  | Failure msg -> Error msg
  | Sys_error msg -> Error msg
