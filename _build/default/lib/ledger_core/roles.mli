(** Ledger membership and roles.

    Members are registered with CA-certified public keys (threat model,
    §II-B).  Roles gate the mutation operations: purge needs the DBA and
    all affected members (Prerequisite 1); occult needs the DBA and a
    regulator (Prerequisite 2). *)

open Ledger_crypto

type role = Regular_user | Dba | Regulator

type member = { name : string; role : role; pub : Ecdsa.public_key; id : Hash.t }

type registry

val create_registry : unit -> registry

val register : registry -> name:string -> role:role -> Ecdsa.public_key -> member
(** @raise Invalid_argument if a member with the same key is already
    registered. *)

val find : registry -> Hash.t -> member option
val find_by_name : registry -> string -> member option
val members : registry -> member list
val with_role : registry -> role -> member list
val cardinal : registry -> int

val role_to_string : role -> string

(** {1 Member certification (§II-B)}

    The threat model assumes every participant's public key is certified
    by a CA.  Certificates are recorded alongside the registry; when a
    ledger is configured with a member CA, registration and the audit's
    who pass require them. *)

type certificate = { subject : Hash.t; signature : Ecdsa.signature }

val certify : ca_priv:Ecdsa.private_key -> Ecdsa.public_key -> certificate
(** CA-sign a member key (the signed message is the key's id). *)

val verify_certificate :
  ca_pub:Ecdsa.public_key -> Ecdsa.public_key -> certificate -> bool

val record_certificate : registry -> certificate -> unit
val certificate_of : registry -> Hash.t -> certificate option
