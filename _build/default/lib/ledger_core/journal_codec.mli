(** Binary wire/storage format for journals.

    A length-prefixed, tagged encoding covering every journal kind
    (normal, time, purge, occult, pseudo-genesis) with signatures and
    cosigner sets — what the ledger proxy ships to shared storage and
    what an external auditor downloads.  Decoding is total: corrupt input
    yields [None], never an exception. *)

open Ledger_crypto

val encode : Journal.t -> bytes

val decode : bytes -> Journal.t option
(** Inverse of {!encode}; [None] on any framing or field corruption. *)

val encoded_size : Journal.t -> int

val digest : Journal.t -> Hash.t
(** Digest of the encoding — stable across encode/decode round trips. *)
