(** Blocks / LedgerInfo (paper Fig. 2).

    Journals are committed in fixed-size blocks; each block records the
    root hashes of the journal accumulator (fam commitment) and the state
    accumulators (CM-Tree1 root and world-state root) as of its last
    journal, chained by the previous block hash.  The block hash is the
    third digest packed into receipts. *)

open Ledger_crypto

type t = {
  height : int;
  start_jsn : int;
  count : int;
  prev_hash : Hash.t;
  journal_commitment : Hash.t;  (** fam node-set digest after the block *)
  clue_root : Hash.t;  (** CM-Tree1 root after the block *)
  world_state_root : Hash.t;
  tx_root : Hash.t;  (** Merkle root over the block's own tx hashes *)
  timestamp : int64;
}

val hash : t -> Hash.t

val links_to : t -> t -> bool
(** [links_to prev next] — hash chain adjacency check (audit step 4). *)
