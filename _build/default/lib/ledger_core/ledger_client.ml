open Ledger_crypto
open Ledger_merkle

type t = {
  name : string;
  lsp_pub : Ecdsa.public_key;
  mutable receipts : Receipt.t list; (* newest first *)
  mutable anchor : (Fam.anchor * Hash.t) option;
}

let create ~name ~lsp_pub = { name; lsp_pub; receipts = []; anchor = None }
let name t = t.name

let remember_receipt t r = t.receipts <- r :: t.receipts
let receipts t = t.receipts

let receipt_for t ~jsn =
  List.find_opt (fun (r : Receipt.t) -> r.Receipt.jsn = jsn) t.receipts

let adopt_anchor t ~anchor ~commitment = t.anchor <- Some (anchor, commitment)
let anchor t = t.anchor

let anchored_upto t =
  match t.anchor with Some (a, _) -> Fam.anchor_size a | None -> 0

let check_existence t ~jsn ~leaf ~current_commitment proof =
  ignore jsn;
  match t.anchor with
  | Some (a, _) ->
      Fam.verify_anchored a ~current_commitment ~leaf proof
  | None -> (
      (* without an anchor only full chained proofs are meaningful *)
      match proof with
      | Fam.Beyond_anchor p -> Fam.verify ~commitment:current_commitment ~leaf p
      | Fam.Within_sealed _ -> false)

let check_receipt_against t ~ledger_tx_hash ~jsn =
  match receipt_for t ~jsn with
  | None -> `No_receipt
  | Some r ->
      if not (Receipt.verify ~lsp_pub:t.lsp_pub r) then `Bad_signature
      else begin
        match ledger_tx_hash jsn with
        | Some tx when Hash.equal tx r.Receipt.tx_hash -> `Ok
        | Some _ | None -> `Repudiated
      end

let stale t ~current_size = current_size > anchored_upto t

let check_growth t ~delta ~new_size ~new_commitment proof =
  match t.anchor with
  | None -> false
  | Some (anchor, _) ->
      Fam.verify_extension ~delta ~old_size:(Fam.anchor_size anchor)
        ~old_peaks:(Fam.anchor_peaks anchor) ~new_size ~new_commitment proof
