open Ledger_crypto

type t = {
  jsn : int;
  request_hash : Hash.t;
  tx_hash : Hash.t;
  block_hash : Hash.t;
  timestamp : int64;
  lsp_sig : Ecdsa.signature;
}

let signing_digest ~jsn ~request_hash ~tx_hash ~block_hash ~timestamp =
  let buf = Buffer.create 160 in
  Buffer.add_string buf "receipt:";
  Buffer.add_string buf (string_of_int jsn);
  Buffer.add_bytes buf (Hash.to_bytes request_hash);
  Buffer.add_bytes buf (Hash.to_bytes tx_hash);
  Buffer.add_bytes buf (Hash.to_bytes block_hash);
  Buffer.add_string buf (Int64.to_string timestamp);
  Hash.digest_bytes (Buffer.to_bytes buf)

let make ~lsp_priv ~jsn ~request_hash ~tx_hash ~block_hash ~timestamp =
  let digest = signing_digest ~jsn ~request_hash ~tx_hash ~block_hash ~timestamp in
  { jsn; request_hash; tx_hash; block_hash; timestamp;
    lsp_sig = Ecdsa.sign lsp_priv digest }

let verify ~lsp_pub t =
  let digest =
    signing_digest ~jsn:t.jsn ~request_hash:t.request_hash ~tx_hash:t.tx_hash
      ~block_hash:t.block_hash ~timestamp:t.timestamp
  in
  Ecdsa.verify lsp_pub digest t.lsp_sig

let is_final t = not (Hash.equal t.block_hash Hash.zero)
