open Ledger_crypto
open Ledger_timenotary

type time_evidence =
  | Direct_tsa of Tsa.token
  | Via_t_ledger of { entry_index : int; client_ts : int64; digest : Hash.t }

type purge_info = {
  purge_upto : int;
  pseudo_genesis_jsn : int;
  survivors : int list;
}

type genesis_snapshot = {
  replaced_purge_jsn : int;
  fam_commitment : Hash.t;
  clue_root : Hash.t;
  member_roster : Hash.t;
}

type kind =
  | Normal
  | Time of time_evidence
  | Purge of purge_info
  | Occult of { target_jsn : int; retained_hash : Hash.t }
  | Pseudo_genesis of genesis_snapshot

type t = {
  jsn : int;
  kind : kind;
  client_id : Hash.t;
  payload : bytes;
  clues : string list;
  client_ts : int64;
  server_ts : int64;
  nonce : int;
  request_hash : Hash.t;
  client_sig : Ecdsa.signature option;
  cosigners : (Hash.t * Ecdsa.signature) list;
}

let kind_tag = function
  | Normal -> "normal"
  | Time _ -> "time"
  | Purge _ -> "purge"
  | Occult _ -> "occult"
  | Pseudo_genesis _ -> "pseudo-genesis"

let request_digest ~ledger_uri ~kind_tag ~payload ~clues ~client_ts ~nonce =
  let buf = Buffer.create (Bytes.length payload + 128) in
  Buffer.add_string buf "request:";
  Buffer.add_string buf ledger_uri;
  Buffer.add_char buf '\000';
  Buffer.add_string buf kind_tag;
  Buffer.add_char buf '\000';
  Buffer.add_bytes buf payload;
  Buffer.add_char buf '\000';
  List.iter
    (fun c ->
      Buffer.add_string buf c;
      Buffer.add_char buf ';')
    clues;
  Buffer.add_string buf (Int64.to_string client_ts);
  Buffer.add_char buf ':';
  Buffer.add_string buf (string_of_int nonce);
  Hash.digest_bytes (Buffer.to_bytes buf)

let kind_digest_fields buf = function
  | Normal -> ()
  | Time (Direct_tsa token) ->
      Buffer.add_bytes buf (Hash.to_bytes token.Tsa.digest);
      Buffer.add_string buf (Int64.to_string token.Tsa.timestamp);
      Buffer.add_bytes buf (Hash.to_bytes token.Tsa.tsa_id);
      Buffer.add_bytes buf (Ecdsa.signature_to_bytes token.Tsa.signature)
  | Time (Via_t_ledger { entry_index; client_ts; digest }) ->
      Buffer.add_string buf (string_of_int entry_index);
      Buffer.add_string buf (Int64.to_string client_ts);
      Buffer.add_bytes buf (Hash.to_bytes digest)
  | Purge { purge_upto; pseudo_genesis_jsn; survivors } ->
      Buffer.add_string buf (string_of_int purge_upto);
      Buffer.add_string buf (string_of_int pseudo_genesis_jsn);
      List.iter (fun s -> Buffer.add_string buf (string_of_int s)) survivors
  | Occult { target_jsn; retained_hash } ->
      Buffer.add_string buf (string_of_int target_jsn);
      Buffer.add_bytes buf (Hash.to_bytes retained_hash)
  | Pseudo_genesis { replaced_purge_jsn; fam_commitment; clue_root; member_roster } ->
      Buffer.add_string buf (string_of_int replaced_purge_jsn);
      Buffer.add_bytes buf (Hash.to_bytes fam_commitment);
      Buffer.add_bytes buf (Hash.to_bytes clue_root);
      Buffer.add_bytes buf (Hash.to_bytes member_roster)

let tx_hash t =
  let buf = Buffer.create (Bytes.length t.payload + 256) in
  Buffer.add_string buf "journal:";
  Buffer.add_string buf (string_of_int t.jsn);
  Buffer.add_char buf '\000';
  Buffer.add_string buf (kind_tag t.kind);
  Buffer.add_char buf '\000';
  kind_digest_fields buf t.kind;
  Buffer.add_bytes buf (Hash.to_bytes t.client_id);
  Buffer.add_bytes buf t.payload;
  Buffer.add_char buf '\000';
  List.iter
    (fun c ->
      Buffer.add_string buf c;
      Buffer.add_char buf ';')
    t.clues;
  Buffer.add_string buf (Int64.to_string t.client_ts);
  Buffer.add_string buf (Int64.to_string t.server_ts);
  Buffer.add_string buf (string_of_int t.nonce);
  Buffer.add_bytes buf (Hash.to_bytes t.request_hash);
  (match t.client_sig with
  | Some s -> Buffer.add_bytes buf (Ecdsa.signature_to_bytes s)
  | None -> ());
  List.iter
    (fun (id, s) ->
      Buffer.add_bytes buf (Hash.to_bytes id);
      Buffer.add_bytes buf (Ecdsa.signature_to_bytes s))
    t.cosigners;
  Hash.digest_bytes (Buffer.to_bytes buf)

let is_time_journal t = match t.kind with Time _ -> true | _ -> false

let pp_kind fmt k = Format.pp_print_string fmt (kind_tag k)
