(** Remote replication for external auditors (paper §II-C: "verified at
    client side … by anyone who can directly access the ledger, such as
    external auditors").

    [pull] downloads the entire ledger — checkpoint, membership, every
    journal (with its retained accumulator leaf) and every block — through
    the byte-level {!Service} protocol, materialises it in the snapshot
    format and replays it through {!Ledger.load}, which re-derives every
    tree and {e refuses} the replica unless the announced commitment, clue
    root, and each journal's content-to-leaf binding reproduce.  The
    result is a locally verified replica an auditor can {!Audit.run}
    without trusting the transport or the LSP. *)

open Ledger_storage
open Ledger_timenotary

val pull :
  transport:(bytes -> bytes) ->
  ?config:Ledger.config ->
  ?t_ledger:T_ledger.t ->
  ?tsa:Tsa.pool ->
  clock:Clock.t ->
  scratch_dir:string ->
  unit ->
  (Ledger.t, string) result
(** [transport] is the only channel to the remote service (e.g.
    [Service.handle remote_ledger], or a real socket).  [scratch_dir] is
    where the downloaded snapshot is staged.  The [config] must match the
    remote service's announced name (checked) — it determines block size,
    fractal height and the LSP key derivation. *)
