(** Client-side verification state (paper §II-C, verification manner 2:
    "verified at client side when LSP is distrusted").

    A client keeps, outside the LSP's reach:
    - the receipts (π_s) for its own transactions;
    - a {e trusted anchor}: a fam checkpoint captured after the client (or
      an auditor it trusts) fully verified the ledger, plus the commitment
      it corresponds to.

    With those, the client can check existence proofs and receipts
    entirely locally, detect LSP repudiation, and decide when its anchor
    is stale (the commitment advanced) and a re-audit is warranted. *)

open Ledger_crypto
open Ledger_merkle

type t

val create : name:string -> lsp_pub:Ecdsa.public_key -> t
val name : t -> string

(** {1 Receipts} *)

val remember_receipt : t -> Receipt.t -> unit
val receipts : t -> Receipt.t list
(** Newest first. *)

val receipt_for : t -> jsn:int -> Receipt.t option

(** {1 Trusted anchors} *)

val adopt_anchor : t -> anchor:Fam.anchor -> commitment:Hash.t -> unit
(** Trust a checkpoint (typically after {!Audit.run} passed). *)

val anchor : t -> (Fam.anchor * Hash.t) option
val anchored_upto : t -> int
(** Journals covered by the trusted anchor (0 when none). *)

(** {1 Local verification (no trust in the LSP)} *)

val check_existence :
  t -> jsn:int -> leaf:Hash.t -> current_commitment:Hash.t ->
  Fam.anchored_proof -> bool
(** Verify a proof the LSP shipped: against the client's trusted anchor
    when it covers the journal, else against [current_commitment] (which
    the client must have obtained through a channel it trusts, e.g. a
    T-Ledger entry). *)

val check_receipt_against : t -> ledger_tx_hash:(int -> Hash.t option) -> jsn:int ->
  [ `Ok | `No_receipt | `Bad_signature | `Repudiated ]
(** Compare a remembered receipt with what the ledger {e now} claims for
    that jsn; [`Repudiated] means the LSP rewrote or dropped the journal
    after issuing the receipt.  Uses real ECDSA (the client is outside the
    simulated-profile boundary). *)

val stale : t -> current_size:int -> bool
(** The ledger grew past the anchor: new journals are unverified. *)

val check_growth :
  t ->
  delta:int ->
  new_size:int ->
  new_commitment:Hash.t ->
  Fam.extension_proof ->
  bool
(** Verify the ledger only {e appended} since the client's anchor (fam
    extension proof).  On success the caller can audit just the suffix
    and then {!adopt_anchor} the fresh state, instead of re-auditing from
    genesis. *)
