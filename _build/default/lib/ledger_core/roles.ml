open Ledger_crypto

type role = Regular_user | Dba | Regulator

type member = { name : string; role : role; pub : Ecdsa.public_key; id : Hash.t }

type certificate = { subject : Hash.t; signature : Ecdsa.signature }

type registry = {
  by_id : (string, member) Hashtbl.t;
  certificates : (string, certificate) Hashtbl.t;
}

let create_registry () =
  { by_id = Hashtbl.create 16; certificates = Hashtbl.create 16 }

let key_of_id id = Hash.to_hex id

let register reg ~name ~role pub =
  let id = Ecdsa.public_key_id pub in
  if Hashtbl.mem reg.by_id (key_of_id id) then
    invalid_arg ("Roles.register: key already registered for " ^ name);
  let m = { name; role; pub; id } in
  Hashtbl.replace reg.by_id (key_of_id id) m;
  m

let find reg id = Hashtbl.find_opt reg.by_id (key_of_id id)

let members reg = Hashtbl.fold (fun _ m acc -> m :: acc) reg.by_id []

let find_by_name reg name =
  List.find_opt (fun m -> String.equal m.name name) (members reg)

let with_role reg role = List.filter (fun m -> m.role = role) (members reg)
let cardinal reg = Hashtbl.length reg.by_id

let role_to_string = function
  | Regular_user -> "user"
  | Dba -> "dba"
  | Regulator -> "regulator"

let certify ~ca_priv pub =
  let subject = Ecdsa.public_key_id pub in
  { subject; signature = Ecdsa.sign ca_priv subject }

let verify_certificate ~ca_pub pub cert =
  Hash.equal cert.subject (Ecdsa.public_key_id pub)
  && Ecdsa.verify ca_pub cert.subject cert.signature

let record_certificate reg cert =
  Hashtbl.replace reg.certificates (Hash.to_hex cert.subject) cert

let certificate_of reg id = Hashtbl.find_opt reg.certificates (Hash.to_hex id)
