(** Dasein-complete audit — paper §V, steps 1–6.

    An external auditor replays the ledger end to end and verifies all
    three Dasein factors:

    - {e who}: client signatures (π_c) on every journal, multi-signatures
      on purge journals (Prerequisite 1) and occult journals
      (Prerequisite 2), and the LSP's receipt signatures (π_s) for any
      receipts the caller holds (step 1 and step 5);
    - {e when}: TSA token signatures on time journals, T-Ledger entry
      existence, and monotone consistency of journal timestamps with the
      bracketing anchors (step 2);
    - {e what}: sequential replay — recompute each journal's tx-hash from
      its stored content, rebuild the fam accumulation, compare the
      reconstructed commitment against every anchored digest and the
      ledger's current commitment, recompute per-block transaction roots
      and check the block hash chain (steps 3–4).

    Occulted journals are handled by Protocol 2 (the retained hash stands
    in for the hidden content); a purged prefix is handled by Protocol 1
    (the audit restarts from the pseudo-genesis and journals are checked
    by fam existence proofs instead of full replay).

    Any failed sub-verification is recorded; per §V the conjunction of all
    proofs decides the verdict ({!report.ok}). *)


type factor = What | When | Who | Chain

type failure = { jsn : int option; factor : factor; message : string }

type report = {
  ok : bool;
  journals_checked : int;
  blocks_checked : int;
  time_anchors_checked : int;
  signatures_checked : int;
  what_seconds : float;
  when_seconds : float;
  who_seconds : float;
  failures : failure list;
}

val run :
  ?from_jsn:int ->
  ?upto_jsn:int ->
  ?before_ts:int64 ->
  ?receipts:Receipt.t list ->
  Ledger.t ->
  report
(** Audit journals in [[from_jsn, upto_jsn)] (defaults: the pseudo-genesis
    if one exists, else 0; and the ledger size).  [before_ts] is the §V
    temporal predicate ("audit all transactions committed before …"): it
    further restricts the scope to journals whose server timestamp
    precedes the bound.  [receipts] are client-held LSP receipts to
    validate in step 5. *)

val pp_report : Format.formatter -> report -> unit
val factor_to_string : factor -> string
