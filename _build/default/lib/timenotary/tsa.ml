open Ledger_crypto
open Ledger_storage

type certificate = {
  subject : Hash.t;
  issuer_sig : Ecdsa.signature;
  root_sig : Ecdsa.signature;
}

type t = {
  name : string;
  clock : Clock.t;
  endorse_rtt_us : int64;
  priv : Ecdsa.private_key;
  pub : Ecdsa.public_key;
  id : Hash.t;
  cert : certificate;
}

(* A process-wide simulated CA with a self-signed root. *)
let ca = lazy (Ecdsa.generate ~seed:"simulated-root-ca")
let ca_public_key () = snd (Lazy.force ca)

let ca_root_digest = lazy (Ecdsa.public_key_id (ca_public_key ()))

let issue_certificate subject =
  let ca_priv, _ = Lazy.force ca in
  {
    subject;
    issuer_sig = Ecdsa.sign ca_priv subject;
    root_sig = Ecdsa.sign ca_priv (Lazy.force ca_root_digest);
  }

type token = {
  digest : Hash.t;
  timestamp : int64;
  tsa_id : Hash.t;
  signature : Ecdsa.signature;
}

let create ?(endorse_rtt_ms = 50.) ~clock name =
  let priv, pub = Ecdsa.generate ~seed:("tsa:" ^ name) in
  let id = Ecdsa.public_key_id pub in
  {
    name;
    clock;
    endorse_rtt_us = Clock.us_of_ms endorse_rtt_ms;
    priv;
    pub;
    id;
    cert = issue_certificate id;
  }

let name t = t.name
let public_key t = t.pub
let id t = t.id

let token_signing_digest digest timestamp =
  let buf = Buffer.create 64 in
  Buffer.add_string buf "tsa-token:";
  Buffer.add_bytes buf (Hash.to_bytes digest);
  Buffer.add_string buf (Int64.to_string timestamp);
  Hash.digest_bytes (Buffer.to_bytes buf)

let endorse t digest =
  Clock.advance t.clock t.endorse_rtt_us;
  let timestamp = Clock.now t.clock in
  let signature = Ecdsa.sign t.priv (token_signing_digest digest timestamp) in
  { digest; timestamp; tsa_id = t.id; signature }

let verify_token pub token =
  Ecdsa.verify pub
    (token_signing_digest token.digest token.timestamp)
    token.signature

let certificate t = t.cert

let verify_token_with_chain t token =
  let ca_pub = ca_public_key () in
  verify_token t.pub token
  && Ecdsa.verify ca_pub t.cert.subject t.cert.issuer_sig
  && Ecdsa.verify ca_pub (Lazy.force ca_root_digest) t.cert.root_sig

type pool = { members : t array; mutable next : int }

let pool = function
  | [] -> invalid_arg "Tsa.pool: empty"
  | members -> { members = Array.of_list members; next = 0 }

let pool_endorse p digest =
  let t = p.members.(p.next) in
  p.next <- (p.next + 1) mod Array.length p.members;
  endorse t digest

let pool_find p id_ =
  Array.find_opt (fun t -> Hash.equal t.id id_) p.members

let pool_verify p token =
  match pool_find p token.tsa_id with
  | None -> false
  | Some t -> verify_token t.pub token
