lib/timenotary/attack.ml: Clock Hash Int64 Ledger_crypto Ledger_storage List Option Pegging T_ledger Tsa
