lib/timenotary/pegging.mli: Clock Hash Ledger_crypto Ledger_storage Tsa
