lib/timenotary/tsa.mli: Clock Ecdsa Hash Ledger_crypto Ledger_storage
