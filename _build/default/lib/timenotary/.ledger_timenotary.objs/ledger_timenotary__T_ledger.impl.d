lib/timenotary/t_ledger.ml: Accumulator Buffer Clock Ecdsa Hash Hashtbl Int64 Ledger_crypto Ledger_merkle Ledger_storage List Tsa
