lib/timenotary/tsa.ml: Array Buffer Clock Ecdsa Hash Int64 Lazy Ledger_crypto Ledger_storage
