lib/timenotary/pegging.ml: Clock Hash Hashtbl Ledger_crypto Ledger_storage List Option Tsa
