lib/timenotary/attack.mli:
