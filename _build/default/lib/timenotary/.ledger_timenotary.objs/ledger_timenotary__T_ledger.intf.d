lib/timenotary/t_ledger.mli: Clock Hash Ledger_crypto Ledger_merkle Ledger_storage Proof Tsa
