open Ledger_crypto
open Ledger_storage

type outcome = {
  protocol : string;
  attempted_delay_s : float;
  window_s : float;
  bounded : bool;
}

let s_of_us us = Int64.to_float us /. 1_000_000.

let one_way_amplification ~delay_s =
  let clock = Clock.create () in
  let peg = Pegging.One_way.create ~clock in
  let created = Clock.now clock in
  let ticket = Pegging.One_way.enqueue peg (Hash.digest_string "victim journal") in
  (* The LSP simply sits on the queue: nothing in the protocol objects. *)
  Clock.advance_sec clock delay_s;
  (match Pegging.One_way.anchor_next peg with
  | Some (t, _) -> assert (t = ticket)
  | None -> assert false);
  let anchored =
    match Pegging.One_way.anchored_time peg ticket with
    | Some ts -> ts
    | None -> assert false
  in
  {
    protocol = "one-way (ProvenDB-style)";
    attempted_delay_s = delay_s;
    window_s = s_of_us (Int64.sub anchored created);
    bounded = false;
  }

let two_way_window ~delta_tau_s ~attempted_delay_s =
  let clock = Clock.create () in
  let tsa = Tsa.pool [ Tsa.create ~endorse_rtt_ms:0. ~clock "t0" ] in
  let tl =
    T_ledger.create
      ~tau_delta_ms:(delta_tau_s *. 1000.)
      ~anchor_interval_ms:(delta_tau_s *. 1000.)
      ~clock ~tsa ()
  in
  ignore (T_ledger.force_anchor tl);
  (* τ₂: the journal is created just after the anchor — the adversary's
     best starting position. *)
  Clock.advance_ms clock 1.;
  let tau2 = Clock.now clock in
  let digest = Hash.digest_string "adversary journal" in
  let ledger_id = Hash.digest_string "adversary ledger" in
  (* Stall the submission as long as Protocol 4 tolerates. *)
  let max_stall_us = Int64.sub (T_ledger.tau_delta_us tl) 1_000L in
  let wanted_us = Int64.of_float (attempted_delay_s *. 1_000_000.) in
  let stall = if Int64.compare wanted_us max_stall_us < 0 then wanted_us else max_stall_us in
  Clock.advance clock (Int64.max 0L stall);
  let entry =
    match T_ledger.submit tl ~ledger_id ~digest ~client_ts:tau2 with
    | Ok e -> e
    | Error (T_ledger.Stale_submission _) ->
        (* Cannot happen with the stall capped below τ_Δ. *)
        assert false
  in
  (* The journal stays malleable until a TSA anchor seals it; step the
     clock until the periodic finalization fires. *)
  let sealed = ref None in
  while !sealed = None do
    Clock.advance_ms clock (delta_tau_s *. 1000. /. 8.);
    T_ledger.tick tl;
    match
      T_ledger.anchors_between tl (entry.T_ledger.index + 1)
        (T_ledger.entry_count tl - 1)
    with
    | token :: _ -> sealed := Some token.Tsa.timestamp
    | [] -> ()
  done;
  let sealed_ts = Option.get !sealed in
  let window_s = s_of_us (Int64.sub sealed_ts tau2) in
  {
    protocol = "two-way (T-Ledger)";
    attempted_delay_s;
    window_s;
    bounded = window_s <= (2. *. delta_tau_s) +. 0.01;
  }

let sweep ~delta_tau_s ~delays_s =
  List.concat_map
    (fun d ->
      [
        one_way_amplification ~delay_s:d;
        two_way_window ~delta_tau_s ~attempted_delay_s:d;
      ])
    delays_s
