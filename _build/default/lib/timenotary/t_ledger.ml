open Ledger_crypto
open Ledger_storage
open Ledger_merkle

type entry_kind =
  | Ledger_digest of { ledger_id : Hash.t; client_ts : int64 }
  | Tsa_anchor of Tsa.token

type entry = { index : int; kind : entry_kind; digest : Hash.t; notary_ts : int64 }

type error = Stale_submission of { client_ts : int64; notary_ts : int64 }

type t = {
  clock : Clock.t;
  tsa : Tsa.pool;
  tau_delta_us : int64;
  anchor_interval_us : int64;
  acc : Accumulator.t;
  mutable entries : entry list; (* newest first *)
  mutable entry_count : int;
  mutable last_anchor_ts : int64;
  verified_anchors : (int, bool) Hashtbl.t; (* entry index -> token valid *)
}

let create ?(tau_delta_ms = 500.) ?(anchor_interval_ms = 1000.) ~clock ~tsa () =
  {
    clock;
    tsa;
    tau_delta_us = Clock.us_of_ms tau_delta_ms;
    anchor_interval_us = Clock.us_of_ms anchor_interval_ms;
    acc = Accumulator.create ();
    entries = [];
    entry_count = 0;
    last_anchor_ts = Clock.now clock;
    verified_anchors = Hashtbl.create 64;
  }

let entry_leaf_digest e =
  let buf = Buffer.create 96 in
  (match e.kind with
  | Ledger_digest { ledger_id; client_ts } ->
      Buffer.add_string buf "tl-digest:";
      Buffer.add_bytes buf (Hash.to_bytes ledger_id);
      Buffer.add_string buf (Int64.to_string client_ts)
  | Tsa_anchor token ->
      Buffer.add_string buf "tl-anchor:";
      Buffer.add_bytes buf (Hash.to_bytes token.Tsa.tsa_id);
      Buffer.add_string buf (Int64.to_string token.Tsa.timestamp);
      Buffer.add_bytes buf (Ecdsa.signature_to_bytes token.Tsa.signature));
  Buffer.add_bytes buf (Hash.to_bytes e.digest);
  Buffer.add_string buf (Int64.to_string e.notary_ts);
  Hash.digest_bytes (Buffer.to_bytes buf)

let push t kind digest =
  let e =
    { index = t.entry_count; kind; digest; notary_ts = Clock.now t.clock }
  in
  ignore (Accumulator.append t.acc (entry_leaf_digest e));
  t.entries <- e :: t.entries;
  t.entry_count <- t.entry_count + 1;
  e

let force_anchor t =
  (* Two-way pegging (Protocol 3): endorse the current accumulator digest
     and anchor the signed token back as a TSA entry. *)
  let digest =
    if Accumulator.size t.acc = 0 then Hash.zero else Accumulator.root t.acc
  in
  let token = Tsa.pool_endorse t.tsa digest in
  t.last_anchor_ts <- Clock.now t.clock;
  push t (Tsa_anchor token) digest

let tick t =
  if
    Int64.compare
      (Int64.sub (Clock.now t.clock) t.last_anchor_ts)
      t.anchor_interval_us
    >= 0
  then ignore (force_anchor t)

let submit t ~ledger_id ~digest ~client_ts =
  tick t;
  let notary_ts = Clock.now t.clock in
  (* Protocol 4: reject submissions older than τ_Δ. *)
  if Int64.compare notary_ts (Int64.add client_ts t.tau_delta_us) >= 0 then
    Error (Stale_submission { client_ts; notary_ts })
  else Ok (push t (Ledger_digest { ledger_id; client_ts }) digest)

let entry_count t = t.entry_count

let entry t i =
  if i < 0 || i >= t.entry_count then invalid_arg "T_ledger.entry: out of range";
  List.nth t.entries (t.entry_count - 1 - i)

let root t = Accumulator.root t.acc
let prove_entry t i = Accumulator.prove t.acc i

let verify_entry ~root ~entry path =
  Accumulator.verify ~root ~leaf:(entry_leaf_digest entry) path

let verified_anchor t e =
  match e.kind with
  | Tsa_anchor token ->
      let ok =
        match Hashtbl.find_opt t.verified_anchors e.index with
        | Some v -> v
        | None ->
            let v = Tsa.pool_verify t.tsa token in
            Hashtbl.replace t.verified_anchors e.index v;
            v
      in
      if ok then Some token else None
  | Ledger_digest _ -> None

let verify_entry_time t i =
  if i < 0 || i >= t.entry_count then None
  else begin
    let ordered = List.rev t.entries in
    let lower = ref None and upper = ref None in
    List.iter
      (fun e ->
        match verified_anchor t e with
        | Some token ->
            if e.index <= i then lower := Some token.Tsa.timestamp
            else if !upper = None && e.index > i then
              upper := Some token.Tsa.timestamp
        | None -> ())
      ordered;
    Some (!lower, !upper)
  end

let anchors_between t lo hi =
  List.rev t.entries
  |> List.filter_map (fun e ->
         if e.index >= lo && e.index <= hi then verified_anchor t e else None)

let delta_tau_us t = t.anchor_interval_us
let tau_delta_us t = t.tau_delta_us
