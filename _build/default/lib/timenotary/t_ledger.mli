(** The Time Ledger (T-Ledger) — paper §III-B2.

    A public notary ledger operated by the LSP that sits between common
    ledgers and the TSA, forming the two-layer time-notary architecture:

    - {e top layer}: every Δτ the T-Ledger runs the two-way pegging
      protocol (Protocol 3) with a TSA pool — its accumulated digest is
      endorsed and the signed token is anchored back as a TSA entry;
    - {e bottom layer}: common ledgers {!submit} their digests under the
      advanced one-way protocol (Protocol 4) — a submission carrying
      client timestamp τ_c is accepted only while τ_t < τ_c + τ_Δ, which
      removes the infinite-amplification attack.

    [verify_entry_time] returns the judicially defensible time bounds of
    an anchored entry: the TSA endorsements bracketing it. *)

open Ledger_crypto
open Ledger_storage
open Ledger_merkle

type t

type entry_kind =
  | Ledger_digest of { ledger_id : Hash.t; client_ts : int64 }
  | Tsa_anchor of Tsa.token

type entry = { index : int; kind : entry_kind; digest : Hash.t; notary_ts : int64 }

type error = Stale_submission of { client_ts : int64; notary_ts : int64 }

val create :
  ?tau_delta_ms:float ->
  ?anchor_interval_ms:float ->
  clock:Clock.t ->
  tsa:Tsa.pool ->
  unit ->
  t
(** [tau_delta_ms] is τ_Δ (default 500 ms); [anchor_interval_ms] is Δτ
    (default 1000 ms — "T-Ledger seeks TSA proof every second"). *)

val submit :
  t -> ledger_id:Hash.t -> digest:Hash.t -> client_ts:int64 -> (entry, error) result
(** Protocol 4.  Also runs {!tick} first, so TSA anchors appear on
    schedule. *)

val tick : t -> unit
(** Run the periodic TSA finalization if Δτ has elapsed. *)

val force_anchor : t -> entry
(** Immediately run one two-way pegging round (used at audit start). *)

val entry_count : t -> int
val entry : t -> int -> entry
val root : t -> Hash.t
val prove_entry : t -> int -> Proof.path
(** Existence proof of an entry against {!root}. *)

val verify_entry : root:Hash.t -> entry:entry -> Proof.path -> bool

val entry_leaf_digest : entry -> Hash.t

val verify_entry_time : t -> int -> (int64 option * int64 option) option
(** [(lower, upper)] TSA-endorsed bounds for an entry: the timestamps of
    the nearest TSA anchors before and after it.  [None] fields mean no
    anchor on that side yet; [None] result means no such entry.  Verifies
    the anchors' TSA signatures before trusting them. *)

val anchors_between : t -> int -> int -> Tsa.token list
(** All TSA anchor tokens with indices in the inclusive range. *)

val delta_tau_us : t -> int64
val tau_delta_us : t -> int64
