(** Time Stamp Authority — the only party LedgerDB's threat model trusts
    (Prerequisite 3): an independent authority whose public key is
    CA-certified and whose clock is authoritative.

    [endorse] implements the first half of Protocol 3: assign the current
    timestamp to a submitted digest and sign the digest–timestamp pair.
    Endorsement costs a configurable round trip on the simulated clock —
    the reason direct TSA pegging is expensive and the T-Ledger exists. *)

open Ledger_crypto
open Ledger_storage

type t

type token = {
  digest : Hash.t;
  timestamp : int64;  (** microseconds, TSA clock *)
  tsa_id : Hash.t;  (** public-key id of the endorsing authority *)
  signature : Ecdsa.signature;
}

val create : ?endorse_rtt_ms:float -> clock:Clock.t -> string -> t
(** [endorse_rtt_ms] defaults to 50 ms — a remote authority service. *)

val name : t -> string
val public_key : t -> Ecdsa.public_key
val id : t -> Hash.t

val endorse : t -> Hash.t -> token
(** Charge the round trip, stamp, sign. *)

val token_signing_digest : Hash.t -> int64 -> Hash.t
(** The digest the TSA actually signs for (digest, timestamp). *)

val verify_token : Ecdsa.public_key -> token -> bool

(** {1 Certificate chain}

    Prerequisite 3 requires the TSA's public key to be certified by a CA.
    Real RFC 3161 tokens carry that chain, and verifying a {e direct} TSA
    token means validating it end to end — the reason direct pegging's
    {e when} verification is far costlier than checking a shared T-Ledger
    anchor (Fig. 7, left bars). *)

type certificate = {
  subject : Hash.t;  (** certified TSA key id *)
  issuer_sig : Ecdsa.signature;  (** CA signature over the subject *)
  root_sig : Ecdsa.signature;  (** root self-signature *)
}

val ca_public_key : unit -> Ecdsa.public_key
val certificate : t -> certificate

val verify_token_with_chain : t -> token -> bool
(** Token signature plus the full certificate chain (three signature
    verifications in total). *)

(** {1 TSA pools}

    A pool of independent authorities avoids a single point of failure
    (paper §III-B1); endorsements rotate round-robin. *)

type pool

val pool : t list -> pool
(** @raise Invalid_argument on an empty list. *)

val pool_endorse : pool -> Hash.t -> token
val pool_find : pool -> Hash.t -> t option
(** Find the pool member with the given id. *)

val pool_verify : pool -> token -> bool
