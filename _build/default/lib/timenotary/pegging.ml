open Ledger_crypto
open Ledger_storage

module One_way = struct
  type t = {
    clock : Clock.t;
    mutable queue : (int * Hash.t) list; (* oldest first *)
    mutable next_ticket : int;
    anchored : (int, int64) Hashtbl.t;
  }

  let create ~clock =
    { clock; queue = []; next_ticket = 0; anchored = Hashtbl.create 64 }

  let enqueue t digest =
    let ticket = t.next_ticket in
    t.next_ticket <- ticket + 1;
    t.queue <- t.queue @ [ (ticket, digest) ];
    ticket

  let anchor_next t =
    match t.queue with
    | [] -> None
    | (ticket, _digest) :: rest ->
        t.queue <- rest;
        let ts = Clock.now t.clock in
        Hashtbl.replace t.anchored ticket ts;
        Some (ticket, ts)

  let anchored_time t ticket = Hashtbl.find_opt t.anchored ticket
  let queued t = List.length t.queue
end

module Two_way = struct
  type t = {
    clock : Clock.t;
    tsa : Tsa.pool;
    mutable journal : (Tsa.token * int64) list; (* newest first, with anchor-back time *)
    mutable count : int;
  }

  let create ~clock ~tsa = { clock; tsa; journal = []; count = 0 }

  let peg t digest = Tsa.pool_endorse t.tsa digest

  let anchor_back t token =
    let i = t.count in
    t.journal <- (token, Clock.now t.clock) :: t.journal;
    t.count <- t.count + 1;
    i

  let nth t i =
    if i < 0 || i >= t.count then None
    else Some (List.nth t.journal (t.count - 1 - i))

  let anchored_token t i = Option.map fst (nth t i)
  let anchor_back_time t i = Option.map snd (nth t i)
end
