(** One-way vs two-way timestamp pegging — the protocol layer of §III-B1.

    {!One_way} models the ProvenDB-style protocol: digests are queued and
    receive their timestamp only when the operator chooses to anchor them
    to the external notary.  The operator (a potentially malicious LSP)
    fully controls anchoring delay — the root of the {e infinite time
    amplification} attack.

    {!Two_way} models Protocol 3: the TSA stamps at submission time and
    the signed token is anchored back, so a journal's age is bracketed by
    TSA endorsements. *)

open Ledger_crypto
open Ledger_storage

module One_way : sig
  type t

  val create : clock:Clock.t -> t

  val enqueue : t -> Hash.t -> int
  (** Queue a digest for later anchoring; returns a ticket.  No timestamp
      is assigned yet. *)

  val anchor_next : t -> (int * int64) option
  (** Anchor the oldest queued digest {e now} (FIFO order preserved, as the
      attack requires); returns its ticket and the externally visible
      timestamp it received. *)

  val anchored_time : t -> int -> int64 option
  val queued : t -> int
end

module Two_way : sig
  type t

  val create : clock:Clock.t -> tsa:Tsa.pool -> t

  val peg : t -> Hash.t -> Tsa.token
  (** Submit for endorsement; the token must then be anchored back with
      {!anchor_back} to complete the protocol. *)

  val anchor_back : t -> Tsa.token -> int
  (** Record the token on the ledger; returns its journal index. *)

  val anchored_token : t -> int -> Tsa.token option
  val anchor_back_time : t -> int -> int64 option
end
