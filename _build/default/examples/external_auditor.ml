(* An external auditor facing a DISTRUSTED LSP (threat model §II-B).

   The auditor (1) runs a full Dasein-complete audit and adopts a trusted
   anchor, (2) verifies day-to-day proofs offline against that anchor via
   the unified Verify API, and (3) catches the LSP when it later rewrites
   history — both through the audit and through a client-held receipt.

   Run with: dune exec examples/external_auditor.exe *)

open Ledger_crypto
open Ledger_storage
open Ledger_core
open Ledger_timenotary

let () =
  (* The LSP's world: ledger + notary.  Real ECDSA end to end. *)
  let clock = Clock.create () in
  let tsa = Tsa.pool [ Tsa.create ~clock "audit-tsa" ] in
  let t_ledger = T_ledger.create ~clock ~tsa () in
  let config =
    { Ledger.default_config with name = "audited"; block_size = 4; fam_delta = 4 }
  in
  let ledger = Ledger.create ~config ~t_ledger ~tsa ~clock () in
  let user, user_key = Ledger.new_member ledger ~name:"user" ~role:Roles.Regular_user in

  (* A client transacts and keeps its receipts outside the LSP. *)
  let client =
    Ledger_client.create ~name:"client" ~lsp_pub:(Ledger.lsp_public_key ledger)
  in
  for i = 0 to 11 do
    Clock.advance_ms clock 200.;
    let r =
      Ledger.append ledger ~member:user ~priv:user_key
        ~clues:[ "case-" ^ string_of_int (i mod 2) ]
        (Bytes.of_string (Printf.sprintf "filing %d" i))
    in
    Ledger_client.remember_receipt client r;
    if i mod 4 = 3 then begin
      Clock.advance_ms clock 1100.;
      match Ledger.anchor_via_t_ledger ledger with
      | Ok _ -> ()
      | Error _ -> failwith "anchor rejected"
    end
  done;
  Ledger.seal_block ledger;

  (* Phase 1: full audit, then adopt a trusted anchor. *)
  let report = Audit.run ~receipts:(Ledger_client.receipts client) ledger in
  Printf.printf "initial audit: %s\n" (if report.Audit.ok then "PASSED" else "FAILED");
  assert report.Audit.ok;
  Ledger_client.adopt_anchor client ~anchor:(Ledger.make_anchor ledger)
    ~commitment:(Ledger.commitment ledger);
  Printf.printf "anchor adopted, covers %d journals\n"
    (Ledger_client.anchored_upto client);

  (* Phase 2: offline verification through the unified Verify API. *)
  let outcomes, all_ok =
    Verify_api.verify_all ledger ~level:Verify_api.Client
      [
        Verify_api.Existence { jsn = 3; payload_digest = None };
        Verify_api.Clue { key = "case-1" };
        Verify_api.Clue_range { key = "case-0"; first = 1; last = 3 };
        Verify_api.Receipt_check (Option.get (Ledger_client.receipt_for client ~jsn:5));
      ]
  in
  List.iter (fun o -> Format.printf "  %a@." Verify_api.pp_outcome o) outcomes;
  assert all_ok;

  (* Anchored proofs verified locally by the client. *)
  let p = Ledger.get_proof_anchored ledger (fst (Option.get (Ledger_client.anchor client))) 2 in
  Printf.printf "anchored offline check of jsn 2: %b\n"
    (Ledger_client.check_existence client ~jsn:2
       ~leaf:(Ledger.tx_hash_of ledger 2)
       ~current_commitment:(Ledger.commitment ledger) p);

  (* Phase 3: the LSP turns malicious and rewrites journal 5. *)
  print_endline "\n-- the LSP rewrites journal 5 --";
  Ledger.Unsafe.rewrite_payload_consistent ledger ~jsn:5
    (Bytes.of_string "falsified filing");
  (match
     Ledger_client.check_receipt_against client
       ~ledger_tx_hash:(fun jsn ->
         if jsn < Ledger.size ledger then Some (Ledger.tx_hash_of ledger jsn)
         else None)
       ~jsn:5
   with
  | `Repudiated -> print_endline "client receipt check: REPUDIATION DETECTED"
  | `Ok -> failwith "tampering went unnoticed by the receipt check"
  | `No_receipt | `Bad_signature -> failwith "unexpected receipt state");
  let report = Audit.run ~receipts:(Ledger_client.receipts client) ledger in
  Printf.printf "re-audit: %s (%d failure(s))\n"
    (if report.Audit.ok then "PASSED" else "FAILED")
    (List.length report.Audit.failures);
  assert (not report.Audit.ok);
  (* show one representative finding per factor *)
  List.iter
    (fun factor ->
      match
        List.find_opt (fun f -> f.Audit.factor = factor) report.Audit.failures
      with
      | Some f ->
          Printf.printf "  [%s] %s\n" (Audit.factor_to_string factor) f.Audit.message
      | None -> ())
    [ Audit.Who; Audit.What; Audit.When; Audit.Chain ];
  ignore Hash.zero;
  print_endline "external auditor demo complete"
