(* The copyright / royalty example of §IV-A: an artwork is produced, then
   its royalties are transferred twice; every event is tracked under the
   clue DCI001 and verified end to end.  A privacy-violating upload is
   then occulted under Prerequisite 2 (DBA + regulator) while the ledger
   stays fully verifiable (Protocol 2).

   Run with: dune exec examples/copyright_notary.exe *)

open Ledger_storage
open Ledger_core
open Ledger_timenotary

let () =
  let clock = Clock.create () in
  let tsa = Tsa.pool [ Tsa.create ~clock "copyright-tsa" ] in
  let t_ledger = T_ledger.create ~clock ~tsa () in
  let config =
    { Ledger.default_config with name = "copyright"; block_size = 4;
      fam_delta = 5; crypto = Crypto_profile.default_simulated }
  in
  let ledger = Ledger.create ~config ~t_ledger ~tsa ~clock () in

  let artist, artist_key = Ledger.new_member ledger ~name:"artist" ~role:Roles.Regular_user in
  let gallery, gallery_key = Ledger.new_member ledger ~name:"gallery" ~role:Roles.Regular_user in
  let studio, studio_key = Ledger.new_member ledger ~name:"studio" ~role:Roles.Regular_user in
  let dba, dba_key = Ledger.new_member ledger ~name:"dba" ~role:Roles.Dba in
  let regulator, regulator_key =
    Ledger.new_member ledger ~name:"regulator" ~role:Roles.Regulator
  in

  let clue = "DCI001" in
  let anchor () =
    Clock.advance_ms clock 1100.;
    match Ledger.anchor_via_t_ledger ledger with
    | Ok _ -> ()
    | Error _ -> failwith "anchoring rejected"
  in

  (* 2005: the artwork is registered. *)
  let r1 =
    Ledger.append ledger ~member:artist ~priv:artist_key ~clues:[ clue ]
      (Bytes.of_string "2005: artwork 'Dasein' registered by artist")
  in
  anchor ();

  (* 2010: first royalty transfer (multi-signed by both parties). *)
  Clock.advance_sec clock 5. (* years compressed *);
  let r2 =
    Ledger.append ledger ~member:artist ~priv:artist_key
      ~cosigners:[ (gallery, gallery_key) ]
      ~clues:[ clue ]
      (Bytes.of_string "2010: royalty rights transferred artist -> gallery")
  in
  anchor ();

  (* 2015: second transfer. *)
  Clock.advance_sec clock 5.;
  let r3 =
    Ledger.append ledger ~member:gallery ~priv:gallery_key
      ~cosigners:[ (studio, studio_key) ]
      ~clues:[ clue ]
      (Bytes.of_string "2015: royalty rights transferred gallery -> studio")
  in
  anchor ();

  (* An unrelated upload that illegally discloses personal data. *)
  let bad =
    Ledger.append ledger ~member:gallery ~priv:gallery_key
      (Bytes.of_string "names, addresses and ID numbers of private buyers")
  in
  anchor ();

  (* Lineage verification: all three royalty records, with count. *)
  Printf.printf "clue %s has %d records (expected 3)\n" clue
    (Ledger.clue_entries ledger clue);
  let proof = Option.get (Ledger.prove_clue ledger ~clue ()) in
  Printf.printf "N-lineage client verification: %b\n"
    (Ledger.verify_clue_client ledger proof);
  List.iter
    (fun (r : Receipt.t) ->
      Printf.printf "  receipt jsn=%d verifies: %b\n" r.Receipt.jsn
        (Ledger.verify_receipt ledger r))
    [ r1; r2; r3 ];

  (* The regulator orders the illegal journal hidden: asynchronous occult,
     then the idle-time reorganization erases the payload. *)
  (match
     Ledger.occult ledger ~target_jsn:bad.Receipt.jsn ~mode:Ledger.Async
       ~signers:[ (dba, dba_key); (regulator, regulator_key) ]
       ~reason:"unauthorised personal data (privacy law)"
   with
  | Ok j -> Printf.printf "occult journal appended at jsn=%d\n" j.Journal.jsn
  | Error e -> failwith e);
  Printf.printf "marked deleted: %b; payload still on disk: %b\n"
    (Ledger.is_occulted ledger bad.Receipt.jsn)
    (Ledger.payload ledger bad.Receipt.jsn <> None);
  let erased = Ledger.reorganize ledger in
  Printf.printf "reorganization erased %d payload(s); retrievable: %b\n" erased
    (Ledger.payload ledger bad.Receipt.jsn <> None);

  (* Protocol 2: the retained hash keeps the ledger verifiable. *)
  let p = Ledger.get_proof ledger bad.Receipt.jsn in
  Printf.printf "occulted journal existence still provable: %b\n"
    (Ledger.verify_existence ledger ~jsn:bad.Receipt.jsn ~payload_digest:None p);
  let report = Audit.run ~receipts:[ r1; r2; r3 ] ledger in
  Format.printf "%a@." Audit.pp_report report;
  assert report.Audit.ok;
  print_endline "copyright notary demo complete"
