examples/remote_client.mli:
