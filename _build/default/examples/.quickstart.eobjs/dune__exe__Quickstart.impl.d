examples/quickstart.ml: Audit Bytes Clock Format Hash Journal Ledger Ledger_core Ledger_crypto Ledger_storage Ledger_timenotary Printf Receipt Roles T_ledger Tsa
