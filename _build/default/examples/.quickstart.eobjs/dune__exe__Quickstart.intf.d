examples/quickstart.mli:
