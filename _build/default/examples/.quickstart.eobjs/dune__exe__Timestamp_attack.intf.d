examples/timestamp_attack.mli:
