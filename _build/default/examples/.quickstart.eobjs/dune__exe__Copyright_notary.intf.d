examples/copyright_notary.mli:
