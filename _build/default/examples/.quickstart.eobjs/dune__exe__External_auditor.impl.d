examples/external_auditor.ml: Audit Bytes Clock Format Hash Ledger Ledger_client Ledger_core Ledger_crypto Ledger_storage Ledger_timenotary List Option Printf Roles T_ledger Tsa Verify_api
