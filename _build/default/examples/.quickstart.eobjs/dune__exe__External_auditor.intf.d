examples/external_auditor.mli:
