examples/remote_client.ml: Bytes Clock Cm_tree Fam Hash Ledger Ledger_cmtree Ledger_core Ledger_crypto Ledger_merkle Ledger_storage List Printf Receipt Roles Service
