examples/supply_chain.ml: Audit Bytes Clock Crypto_profile Format Hash Journal Ledger Ledger_core Ledger_crypto Ledger_storage Ledger_timenotary List Option Printf Receipt Roles T_ledger Tsa
