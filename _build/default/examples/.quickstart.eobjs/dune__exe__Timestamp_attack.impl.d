examples/timestamp_attack.ml: Attack Ledger_timenotary List Printf
