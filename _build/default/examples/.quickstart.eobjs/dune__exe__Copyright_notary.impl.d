examples/copyright_notary.ml: Audit Bytes Clock Crypto_profile Format Journal Ledger Ledger_core Ledger_storage Ledger_timenotary List Option Printf Receipt Roles T_ledger Tsa
