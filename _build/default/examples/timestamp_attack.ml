(* Demonstration of the Fig. 5 timestamp attacks.

   A malicious LSP first exploits a ProvenDB-style one-way pegging notary
   to backdate by an arbitrary amount, then tries the same play against
   the T-Ledger's two-way protocol and is boxed into the 2·Δτ window.

   Run with: dune exec examples/timestamp_attack.exe *)

open Ledger_timenotary

let () =
  print_endline "=== Attack 1: infinite time amplification (one-way pegging)";
  print_endline
    "The LSP queues a journal's digest but controls when it reaches the\n\
     notary.  Nothing in the protocol limits the stall:";
  List.iter
    (fun delay ->
      let o = Attack.one_way_amplification ~delay_s:delay in
      Printf.printf
        "  stalled %8.0f s  ->  journal malleable for %8.0f s  (unbounded)\n"
        o.Attack.attempted_delay_s o.Attack.window_s)
    [ 60.; 3600.; 86400. ];

  print_endline "";
  print_endline "=== Attack 2: the same adversary vs the two-way T-Ledger protocol";
  print_endline
    "Protocol 4 rejects stale submissions (tau_delta) and the T-Ledger is\n\
     TSA-finalized every delta_tau = 1 s, so however long the adversary\n\
     stalls, the malicious window cannot exceed 2 * delta_tau:";
  List.iter
    (fun delay ->
      let o = Attack.two_way_window ~delta_tau_s:1.0 ~attempted_delay_s:delay in
      Printf.printf
        "  attempted %8.0f s  ->  window %5.2f s  (bounded: %b)\n"
        o.Attack.attempted_delay_s o.Attack.window_s o.Attack.bounded)
    [ 60.; 3600.; 86400. ];

  print_endline "";
  print_endline "=== Tightening delta_tau shrinks the exposure linearly";
  List.iter
    (fun dt ->
      let o = Attack.two_way_window ~delta_tau_s:dt ~attempted_delay_s:3600. in
      Printf.printf "  delta_tau = %4.1f s  ->  max window %5.2f s\n" dt
        o.Attack.window_s)
    [ 2.0; 1.0; 0.5; 0.2 ];
  print_endline "\ntimestamp attack demo complete"
