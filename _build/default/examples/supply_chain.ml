(* The paper's motivating scenario (§I): a national Grain-Cotton-Oil
   supply chain.  Banks, manufacturers, retailers, suppliers and
   warehouses append manuscripts, invoices and receipts to an auditable
   ledger; every record is clue-tracked per shipment, any external party
   can audit what-when-who, and an old season is purged under
   Prerequisite 1 with milestone journals surviving.

   Run with: dune exec examples/supply_chain.exe *)

open Ledger_crypto
open Ledger_storage
open Ledger_core
open Ledger_timenotary

let () =
  let clock = Clock.create () in
  let tsa = Tsa.pool [ Tsa.create ~clock "national-time-service" ] in
  let t_ledger = T_ledger.create ~clock ~tsa () in
  let config =
    { Ledger.default_config with name = "gco-supply-chain"; block_size = 8;
      fam_delta = 6;
      crypto = Crypto_profile.default_simulated (* fleet-scale demo *) }
  in
  let ledger = Ledger.create ~config ~t_ledger ~tsa ~clock () in

  (* Participants. *)
  let bank, bank_key = Ledger.new_member ledger ~name:"agri-bank" ~role:Roles.Regular_user in
  let oil, oil_key = Ledger.new_member ledger ~name:"oil-manufacturer" ~role:Roles.Regular_user in
  let cotton, cotton_key = Ledger.new_member ledger ~name:"cotton-retailer" ~role:Roles.Regular_user in
  let warehouse, warehouse_key = Ledger.new_member ledger ~name:"grain-warehouse" ~role:Roles.Regular_user in
  let dba, dba_key = Ledger.new_member ledger ~name:"dba" ~role:Roles.Dba in

  let members =
    [ (bank, bank_key); (oil, oil_key); (cotton, cotton_key);
      (warehouse, warehouse_key) ]
  in

  (* Season 2025: each shipment is a clue; every participant appends its
     paperwork under the shipment's clue. *)
  let record (member, key) ~shipment text =
    Clock.advance_ms clock 250.;
    let receipt =
      Ledger.append ledger ~member ~priv:key ~clues:[ shipment ]
        (Bytes.of_string text)
    in
    Clock.advance_ms clock 800.;
    (match Ledger.anchor_via_t_ledger ledger with Ok _ -> () | Error _ -> ());
    receipt
  in
  let season_2025 = [ "GCO-2025-001"; "GCO-2025-002"; "GCO-2025-003" ] in
  let receipts_2025 =
    List.concat_map
      (fun shipment ->
        [
          record (List.nth members 3) ~shipment ("warehouse intake " ^ shipment);
          record (List.nth members 0) ~shipment ("letter of credit " ^ shipment);
          record (List.nth members 1) ~shipment ("oil pressing record " ^ shipment);
          record (List.nth members 2) ~shipment ("retail invoice " ^ shipment);
        ])
      season_2025
  in
  Printf.printf "season 2025: %d journals across %d shipments\n"
    (List.length receipts_2025) (List.length season_2025);

  (* Lineage: an auditor asks for shipment GCO-2025-002's full history and
     verifies it client-side through the CM-Tree (§IV-C). *)
  let clue = "GCO-2025-002" in
  let proof = Option.get (Ledger.prove_clue ledger ~clue ()) in
  Printf.printf "lineage of %s: %d records, client verification: %b\n" clue
    (Ledger.clue_entries ledger clue)
    (Ledger.verify_clue_client ledger proof);

  (* Season 2026 begins. *)
  let season_2026 = [ "GCO-2026-001"; "GCO-2026-002" ] in
  List.iter
    (fun shipment ->
      List.iter (fun m -> ignore (record m ~shipment ("record " ^ shipment))) members)
    season_2026;

  (* Regulatory audit of everything so far. *)
  let report = Audit.run ~receipts:receipts_2025 ledger in
  Format.printf "pre-purge audit: %a@." Audit.pp_report report;
  assert report.Audit.ok;

  (* End of retention for season 2025: purge it.  Prerequisite 1 requires
     the DBA plus every member holding journals before the purge point.
     Block-trade milestones survive in the survival stream. *)
  let upto = 4 * List.length season_2025 * 2 in
  let upto = min upto (Ledger.size ledger) in
  let affected = Ledger.affected_members ledger ~upto_jsn:upto in
  let key_of (m : Roles.member) =
    List.find (fun (m', _) -> Hash.equal m'.Roles.id m.Roles.id) members
  in
  let signers = (dba, dba_key) :: List.map key_of affected in
  let milestone = (List.hd receipts_2025).Receipt.jsn in
  (match
     Ledger.purge ledger
       ~request:{ Ledger.upto_jsn = upto; survivors = [ milestone ];
                  erase_fam_nodes = true }
       ~signers
   with
  | Ok pj ->
      Printf.printf "purged journals [0,%d) at purge journal jsn=%d\n" upto
        pj.Journal.jsn
  | Error e -> failwith e);
  Printf.printf "milestone %d survives: %b\n" milestone
    (Ledger.read_survivor ledger milestone <> None);

  (* Post-purge: season 2026 still fully auditable (Protocol 1 restarts
     from the pseudo-genesis). *)
  let report = Audit.run ledger in
  Format.printf "post-purge audit: %a@." Audit.pp_report report;
  assert report.Audit.ok;
  print_endline "supply chain demo complete"
