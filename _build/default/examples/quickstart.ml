(* Quickstart: create a ledger, append journals, get a receipt, verify all
   three Dasein factors, then run a full external audit.

   Run with: dune exec examples/quickstart.exe *)

open Ledger_crypto
open Ledger_storage
open Ledger_core
open Ledger_timenotary

let () =
  (* 1. Infrastructure: a simulated clock, a TSA pool (the only trusted
     party) and the public T-Ledger time notary. *)
  let clock = Clock.create () in
  let tsa =
    Tsa.pool
      [ Tsa.create ~clock "national-time-service";
        Tsa.create ~clock "xian-trusted-time" ]
  in
  let t_ledger = T_ledger.create ~clock ~tsa () in

  (* 2. The ledger itself, with a registered client. *)
  let ledger = Ledger.create ~t_ledger ~tsa ~clock () in
  let alice, alice_key =
    Ledger.new_member ledger ~name:"alice" ~role:Roles.Regular_user
  in

  (* 3. Append a journal.  The client signs the request (π_c); the LSP
     returns a signed receipt (π_s). *)
  Clock.advance_ms clock 20.;
  let receipt =
    Ledger.append ledger ~member:alice ~priv:alice_key
      ~clues:[ "invoice-2026-001" ]
      (Bytes.of_string "Invoice: 42 sacks of grain, paid in full")
  in
  Printf.printf "appended journal jsn=%d (tx-hash %s)\n" receipt.Receipt.jsn
    (Hash.short_hex receipt.Receipt.tx_hash);

  (* 4. Anchor the ledger's commitment to the T-Ledger (when evidence). *)
  Clock.advance_ms clock 1100.;
  (match Ledger.anchor_via_t_ledger ledger with
  | Ok j -> Printf.printf "time journal anchored at jsn=%d\n" j.Journal.jsn
  | Error _ -> prerr_endline "T-Ledger rejected the submission");

  (* 5. what: existence verification against the fam commitment. *)
  let proof = Ledger.get_proof ledger receipt.Receipt.jsn in
  let what_ok =
    Ledger.verify_existence ledger ~jsn:receipt.Receipt.jsn
      ~payload_digest:None proof
  in
  Printf.printf "what  (existence):      %b\n" what_ok;

  (* 6. who: the receipt is the LSP's non-repudiation proof; the journal
     carries the client's. *)
  let who_ok = Ledger.verify_receipt ledger receipt in
  Printf.printf "who   (non-repudiation): %b\n" who_ok;

  (* 7. when: the time journal brackets the journal between TSA anchors. *)
  let when_ok =
    match Ledger.time_journals ledger with
    | { Journal.kind = Journal.Time (Journal.Via_t_ledger { entry_index; _ }); _ }
      :: _ -> (
        match T_ledger.verify_entry_time t_ledger entry_index with
        | Some (Some _, _) | Some (None, Some _) -> true
        | _ -> false)
    | _ -> false
  in
  Printf.printf "when  (credible time):   %b\n" when_ok;

  (* 8. Full Dasein-complete audit (§V): an external party replays the
     whole ledger. *)
  let report = Audit.run ~receipts:[ receipt ] ledger in
  Format.printf "%a@." Audit.pp_report report;
  if not report.Audit.ok then exit 1;
  print_endline "quickstart: Dasein-complete audit PASSED"
