(* Table II: public-cloud service comparison — LedgerDB vs QLDB.

   Both run as cloud services on simulated clocks: every API call pays a
   cloud round trip.  QLDB documents are 32 KB [index, data] pairs; its
   lineage uses the paper's [key, data, prehash, sig] schema where every
   version is verified individually. *)

open Ledger_storage
open Ledger_baselines
open Ledger_bench_util

let run () =
  Table.print_title
    "Table II — Application latency on public cloud: QLDB vs LedgerDB (seconds)";
  let rng = Det_rng.create ~seed:31 in
  let clock_q = Clock.create () in
  let clock_l = Clock.create () in
  let qldb = Qldb_sim.create ~clock:clock_q () in
  let ldb = Ledgerdb_app.create_cloud ~clock:clock_l in
  (* production-scale accumulator so QLDB proofs have real height; the
     probe documents are sandwiched so they sit at full proof depth *)
  Qldb_sim.preload qldb (1 lsl 19);
  let doc = Det_rng.bytes rng 32768 in
  (* some pre-existing documents *)
  for i = 0 to 63 do
    let d = Det_rng.bytes rng 32768 in
    Qldb_sim.insert qldb ~id:(Printf.sprintf "pre-%d" i) d;
    Ledgerdb_app.insert ldb ~id:(Printf.sprintf "pre-%d" i) d
  done;
  let _, q_insert =
    Timing.simulated_ms clock_q (fun () -> Qldb_sim.insert qldb ~id:"doc-x" doc)
  in
  let _, l_insert =
    Timing.simulated_ms clock_l (fun () -> Ledgerdb_app.insert ldb ~id:"doc-x" doc)
  in
  Qldb_sim.preload qldb (1 lsl 19);
  let rq, q_retrieve =
    Timing.simulated_ms clock_q (fun () -> Qldb_sim.retrieve qldb ~id:"doc-x")
  in
  let rl, l_retrieve =
    Timing.simulated_ms clock_l (fun () -> Ledgerdb_app.retrieve ldb ~id:"doc-x")
  in
  assert (rq <> None && rl <> None);
  let vq, q_verify =
    Timing.simulated_ms clock_q (fun () -> Qldb_sim.verify qldb ~id:"doc-x")
  in
  let vl, l_verify =
    Timing.simulated_ms clock_l (fun () -> Ledgerdb_app.verify ldb ~id:"doc-x")
  in
  assert (vq && vl);
  (* lineage: same key with 5 and 100 versions *)
  let lineage versions =
    let key = Printf.sprintf "asset-%d" versions in
    for _ = 1 to versions do
      let d = Det_rng.bytes rng 1024 in
      Qldb_sim.put_version qldb ~key d;
      Ledgerdb_app.put_version ldb ~key d
    done;
    Qldb_sim.preload qldb (1 lsl 16);
    let okq, q_ms =
      Timing.simulated_ms clock_q (fun () -> Qldb_sim.verify_lineage qldb ~key)
    in
    let okl, l_ms =
      Timing.simulated_ms clock_l (fun () -> Ledgerdb_app.verify_lineage ldb ~key)
    in
    assert (okq && okl);
    (q_ms, l_ms)
  in
  let q5, l5 = lineage 5 in
  let q100, l100 = lineage 100 in
  let s ms = Printf.sprintf "%.3f" (ms /. 1000.) in
  Table.print_table
    ~header:[ "Application"; "Operation"; "QLDB (s)"; "LedgerDB (s)"; "speedup" ]
    [
      [ "Notarization"; "Insert"; s q_insert; s l_insert;
        Printf.sprintf "%.1fx" (q_insert /. l_insert) ];
      [ "Notarization"; "Retrieve"; s q_retrieve; s l_retrieve;
        Printf.sprintf "%.1fx" (q_retrieve /. l_retrieve) ];
      [ "Notarization"; "Verify"; s q_verify; s l_verify;
        Printf.sprintf "%.0fx" (q_verify /. l_verify) ];
      [ "Lineage (5 versions)"; "Verify"; s q5; s l5;
        Printf.sprintf "%.0fx" (q5 /. l5) ];
      [ "Lineage (100 versions)"; "Verify"; s q100; s l100;
        Printf.sprintf "%.0fx" (q100 /. l100) ];
    ];
  print_endline
    "\nPaper figures: insert 0.065 vs 0.027; retrieve 0.036 vs 0.028; verify\n\
     1.557 vs 0.028 (56x); lineage verify 7.786 vs 0.028 (278x at 5 versions)\n\
     and 155.9 vs 0.030 (5197x at 100 versions)."
