(* Fig. 10: application-level comparison — LedgerDB vs Hyperledger Fabric
   on data notarization and data lineage.

   Both systems run on the same simulated clock; service costs (crypto,
   ordering, validation, random I/O) advance it, so throughput and
   latency are read off in simulated time with calibrated commodity
   constants.  The shapes — flat multi-10K-TPS LedgerDB vs ~2K-TPS
   consensus-bound Fabric, and the ~50-entry lineage crossover — are
   structural. *)

open Ledger_storage
open Ledger_baselines
open Ledger_bench_util

(* --- (a) notarization append TPS vs journal volume ----------------------- *)

let volumes ~big =
  (* ledger volume in bytes with 256 B journals *)
  if big then [ 1 lsl 12; 1 lsl 16; 1 lsl 20; 1 lsl 22; 1 lsl 24 ]
  else [ 1 lsl 12; 1 lsl 16; 1 lsl 18; 1 lsl 20 ]

let run_append_tps ~big () =
  let payload = 256 in
  let batch = 1000 in
  let rng = Det_rng.create ~seed:5 in
  let clock_l = Clock.create () in
  let clock_f = Clock.create () in
  let ldb = Ledgerdb_app.create_local ~clock:clock_l in
  let fab = Fabric_sim.create ~clock:clock_f () in
  let l_count = ref 0 and f_count = ref 0 in
  let data () = Det_rng.bytes rng payload in
  let rows =
    List.map
      (fun volume ->
        let target = volume / payload in
        while !l_count < target do
          Ledgerdb_app.insert_pipelined ldb ~id:(Printf.sprintf "doc-%d" !l_count) (data ());
          incr l_count
        done;
        while !f_count < target do
          Fabric_sim.submit_pipelined fab ~key:(Printf.sprintf "doc-%d" !f_count) (data ());
          incr f_count
        done;
        let l_tps =
          Timing.simulated_throughput clock_l ~n:batch (fun i ->
              Ledgerdb_app.insert_pipelined ldb
                ~id:(Printf.sprintf "doc-%d" (!l_count + i))
                (data ()))
        in
        l_count := !l_count + batch;
        let f_tps =
          Timing.simulated_throughput clock_f ~n:batch (fun i ->
              Fabric_sim.submit_pipelined fab
                ~key:(Printf.sprintf "doc-%d" (!f_count + i))
                (data ()))
        in
        f_count := !f_count + batch;
        ( Workload.size_label volume ^ "B",
          [ l_tps /. 1000.; f_tps /. 1000.; l_tps /. f_tps ] ))
      (volumes ~big)
  in
  Table.print_multi_series
    ~title:
      "Fig. 10(a) — Notarization Append throughput (K TPS) vs journal volume (256 B payloads)"
    ~x_label:"volume"
    ~series_labels:[ "LedgerDB"; "Fabric"; "ratio" ]
    rows;
  print_endline
    "\nPaper shape: LedgerDB ~52K->50K TPS, Fabric ~2.4K->2.0K TPS (23x)."

(* --- (b) notarization verification latency ------------------------------- *)

let run_verify_latency ~big () =
  let payload = 4096 in
  let rng = Det_rng.create ~seed:6 in
  let rows =
    List.map
      (fun volume ->
        let n = max 8 (volume / payload) in
        let clock_l = Clock.create () in
        let clock_f = Clock.create () in
        let ldb = Ledgerdb_app.create_local ~clock:clock_l in
        let fab = Fabric_sim.create ~clock:clock_f () in
        for i = 0 to n - 1 do
          let data = Det_rng.bytes rng payload in
          Ledgerdb_app.insert ldb ~id:(Printf.sprintf "doc-%d" i) data;
          Fabric_sim.submit fab ~key:(Printf.sprintf "doc-%d" i) data
        done;
        let probe = Printf.sprintf "doc-%d" (Det_rng.int rng n) in
        let ok_l, l_ms =
          Timing.simulated_ms clock_l (fun () -> Ledgerdb_app.verify ldb ~id:probe)
        in
        let ok_f, f_ms =
          Timing.simulated_ms clock_f (fun () -> Fabric_sim.verify_key fab ~key:probe)
        in
        assert (ok_l && ok_f);
        (Workload.size_label volume ^ "B", [ l_ms; f_ms; f_ms /. l_ms ]))
      (volumes ~big)
  in
  Table.print_multi_series
    ~title:
      "Fig. 10(b) — Notarization verification latency (ms) vs journal volume (4 KB payloads)"
    ~x_label:"volume"
    ~series_labels:[ "LedgerDB (ms)"; "Fabric (ms)"; "ratio" ]
    rows;
  print_endline
    "\nPaper shape: LedgerDB ~2.5 ms flat; Fabric ~1.2 s flat (about 500x)."

(* --- (c)/(d) lineage verification ---------------------------------------- *)

let entry_counts = [ 1; 2; 5; 10; 20; 50; 100; 200 ]

let build_lineage ~entries =
  let rng = Det_rng.create ~seed:(17 + entries) in
  let clock_l = Clock.create () in
  let clock_f = Clock.create () in
  let ldb = Ledgerdb_app.create_local ~clock:clock_l in
  let fab = Fabric_sim.create ~clock:clock_f () in
  let key = "item-0001" in
  for _ = 1 to entries do
    let data = Det_rng.bytes rng 1024 in
    Ledgerdb_app.put_version ldb ~key data;
    Fabric_sim.submit fab ~key data
  done;
  (clock_l, clock_f, ldb, fab, key)

let run_lineage_tps () =
  let probes = 200 in
  let rows =
    List.map
      (fun entries ->
        let clock_l, clock_f, ldb, fab, key = build_lineage ~entries in
        let l_tps =
          Timing.simulated_throughput clock_l ~n:probes (fun _ ->
              assert (Ledgerdb_app.verify_lineage_server ldb ~key))
        in
        let f_tps =
          Timing.simulated_throughput clock_f ~n:probes (fun _ ->
              assert (Fabric_sim.verify_history_server fab ~key = entries))
        in
        (string_of_int entries, [ l_tps; f_tps; l_tps /. f_tps ]))
      entry_counts
  in
  Table.print_multi_series
    ~title:
      "Fig. 10(c) — Lineage verification throughput (TPS) vs clue entries (server-side)"
    ~x_label:"entries"
    ~series_labels:[ "LedgerDB"; "Fabric"; "ratio" ]
    rows;
  print_endline
    "\nPaper shape: LedgerDB does one random I/O per entry so its TPS falls as\n\
     1/entries; Fabric reads the whole history with ~one I/O and stays flat;\n\
     the curves cross near 50 entries."

let run_lineage_latency () =
  let rows =
    List.map
      (fun entries ->
        let clock_l, clock_f, ldb, fab, key = build_lineage ~entries in
        let ok_l, l_ms =
          Timing.simulated_ms clock_l (fun () ->
              Ledgerdb_app.verify_lineage ldb ~key)
        in
        let n_f, f_ms =
          Timing.simulated_ms clock_f (fun () ->
              Fabric_sim.verify_history fab ~key)
        in
        assert (ok_l && n_f = entries);
        (string_of_int entries, [ l_ms; f_ms; f_ms /. l_ms ]))
      entry_counts
  in
  Table.print_multi_series
    ~title:
      "Fig. 10(d) — Lineage end-to-end verification latency (ms) vs clue entries"
    ~x_label:"entries"
    ~series_labels:[ "LedgerDB (ms)"; "Fabric (ms)"; "ratio" ]
    rows;
  print_endline
    "\nPaper shape: both grow with entries; LedgerDB stays ~300x lower because\n\
     Fabric pays the consensus invocation on every verification."

let run ?(big = false) () =
  run_append_tps ~big ();
  run_verify_latency ~big ();
  run_lineage_tps ();
  run_lineage_latency ()
