(* Fig. 8: write (Append) and existence-verification (GetProof) throughput
   of the tim accumulator vs fam trees of fractal height 5..25.

   Structural costs measured in wall time over the real data structures:
   a tim append maintains the per-transaction root (bagging O(log n)
   peaks), while a fam append maintains only the current epoch's node-set
   (bounded by delta).  GetProof uses tim's full bagged path vs fam-aoa's
   anchored epoch path. *)

open Ledger_crypto
open Ledger_merkle
open Ledger_bench_util

let sizes ~big =
  if big then [ 1 lsl 10; 1 lsl 12; 1 lsl 14; 1 lsl 16; 1 lsl 18 ]
  else [ 1 lsl 10; 1 lsl 12; 1 lsl 14; 1 lsl 16 ]

let deltas = [ 5; 10; 15; 20; 25 ]

type model = Tim of Accumulator.t | Bamt_m of Bamt.t | Fam of Fam.t

let model_labels =
  "tim" :: "bAMT" :: List.map (fun d -> Printf.sprintf "fam-%d" d) deltas

let make_models () =
  Tim (Accumulator.create ())
  :: Bamt_m (Bamt.create ~batch_size:1024)
  :: List.map (fun d -> Fam (Fam.create ~delta:d)) deltas

let leaf i = Hash.digest_string ("tx" ^ string_of_int i)

(* One paper-faithful append: insert the digest and refresh the
   per-transaction commitment. *)
let append_op model h =
  match model with
  | Tim acc ->
      ignore (Accumulator.append acc h);
      ignore (Accumulator.root acc)
  | Bamt_m b ->
      ignore (Bamt.append b h);
      ignore (Bamt.root b)
  | Fam fam ->
      ignore (Fam.append fam h);
      ignore (Fam.commitment fam)

let run_append ~big () =
  let sizes = sizes ~big in
  let models = make_models () in
  let batch = 4096 in
  let filled = ref 0 in
  let rows =
    List.map
      (fun target ->
        (* grow every model to the target size *)
        while !filled < target do
          let h = leaf !filled in
          List.iter (fun m -> append_op m h) models;
          incr filled
        done;
        (* measure the next batch at this volume *)
        let tps =
          List.map
            (fun m ->
              Timing.wall_throughput ~n:batch (fun i -> append_op m (leaf (target + i))))
            models
        in
        (* keep sizes aligned across models after the measured batch *)
        filled := !filled + batch;
        (Workload.size_label target, List.map (fun t -> t /. 1000.) tps))
      sizes
  in
  Table.print_multi_series
    ~title:"Fig. 8(a) — Append throughput (K TPS) vs ledger size"
    ~x_label:"journals" ~series_labels:model_labels rows;
  print_endline
    "\nPaper shape: tim declines as the ledger grows; each fam-n flattens once\n\
     its first epoch fills; smaller fractal heights sustain higher TPS."

let run_getproof ~big () =
  let sizes = sizes ~big in
  let models = make_models () in
  let rng = Det_rng.create ~seed:13 in
  let probes = 2048 in
  let filled = ref 0 in
  let rows =
    List.map
      (fun target ->
        while !filled < target do
          let h = leaf !filled in
          List.iter (fun m -> append_op m h) models;
          incr filled
        done;
        let tps =
          List.map
            (fun m ->
              match m with
              | Tim acc ->
                  Timing.wall_throughput ~n:probes (fun _ ->
                      let i = Det_rng.int rng target in
                      let p = Accumulator.prove acc i in
                      assert (
                        Accumulator.verify ~root:(Accumulator.root acc)
                          ~leaf:(Accumulator.leaf acc i) p))
              | Bamt_m b ->
                  let root = Bamt.root b in
                  Timing.wall_throughput ~n:probes (fun _ ->
                      let i = Det_rng.int rng target in
                      assert (Bamt.verify ~root ~leaf:(leaf i) (Bamt.prove b i)))
              | Fam fam ->
                  (* fam-aoa: proofs against a trusted anchor *)
                  let anchor = Fam.make_anchor fam in
                  let commitment = Fam.commitment fam in
                  Timing.wall_throughput ~n:probes (fun _ ->
                      let i = Det_rng.int rng target in
                      let p = Fam.prove_anchored fam anchor i in
                      assert (
                        Fam.verify_anchored anchor
                          ~current_commitment:commitment ~leaf:(Fam.leaf fam i)
                          p)))
            models
        in
        (Workload.size_label target, List.map (fun t -> t /. 1000.) tps))
      sizes
  in
  Table.print_multi_series
    ~title:
      "Fig. 8(b) — GetProof (existence verification) throughput (K TPS) vs ledger size"
    ~x_label:"journals" ~series_labels:model_labels rows;
  print_endline
    "\nPaper shape: tim throughput decays with ledger size; fam-n is flat once\n\
     accumulated journals exceed the epoch threshold (smaller n stabilises\n\
     earlier and higher)."

let run ?(big = false) () =
  run_append ~big ();
  run_getproof ~big ()
