(* Verification-object (proof) sizes across the accumulator models and the
   lineage structures, measured as encoded wire bytes.  Complements the
   paper's verification-efficiency story: fam-aoa's flat O(delta) proof vs
   tim's growing O(log n), and CM-Tree's support-only clue proofs. *)

open Ledger_crypto
open Ledger_merkle
open Ledger_cmtree
open Ledger_bench_util

let leaf i = Hash.digest_string ("ps" ^ string_of_int i)

let path_bytes path =
  let w = Wire.writer () in
  Proof_codec.w_path w path;
  Bytes.length (Wire.contents w)

let run () =
  let sizes = [ 1 lsl 10; 1 lsl 14; 1 lsl 18 ] in
  let delta = 10 in
  let rows =
    List.map
      (fun n ->
        let acc = Accumulator.create () in
        let fam = Fam.create ~delta in
        for i = 0 to n - 1 do
          ignore (Accumulator.append acc (leaf i));
          ignore (Fam.append fam (leaf i))
        done;
        let anchor = Fam.make_anchor fam in
        (* a mid-ledger journal: sealed epoch for fam-aoa *)
        let probe = n / 2 in
        let tim_bytes = path_bytes (Accumulator.prove acc probe) in
        let fam_full_bytes =
          Bytes.length (Proof_codec.encode_fam_proof (Fam.prove fam probe))
        in
        let fam_aoa_bytes =
          Bytes.length
            (Proof_codec.encode_fam_anchored (Fam.prove_anchored fam anchor probe))
        in
        ( Workload.size_label n,
          [
            float_of_int tim_bytes;
            float_of_int fam_full_bytes;
            float_of_int fam_aoa_bytes;
          ] ))
      sizes
  in
  Table.print_multi_series
    ~title:
      (Printf.sprintf
         "Proof sizes (wire bytes) vs ledger size — tim vs fam-%d (mid-ledger journal)"
         delta)
    ~x_label:"journals"
    ~series_labels:[ "tim path"; "fam full chain"; "fam-aoa (anchored)" ]
    rows;
  (* clue proofs: CM-Tree batch proof vs ccMPT's m individual paths *)
  let n = 1 lsl 14 in
  let m_values = [ 5; 20; 50 ] in
  let rows =
    List.map
      (fun m ->
        let acc = Accumulator.create () in
        let cm = Cm_tree.create () in
        let cc = Ledger_mpt.Ccmpt.create acc in
        for i = 0 to n - 1 do
          let clue = if i < m then "target" else "bg" ^ string_of_int (i mod 211) in
          ignore (Accumulator.append acc (leaf i));
          ignore (Cm_tree.insert cm ~clue (leaf i));
          Ledger_mpt.Ccmpt.add cc ~clue ~jsn:i
        done;
        let cm_bytes =
          let proof = Option.get (Cm_tree.prove_clue cm ~clue:"target" ()) in
          let w = Wire.writer () in
          Cm_tree.w_clue_proof w proof;
          Bytes.length (Wire.contents w)
        in
        let cc_bytes =
          let proof = Option.get (Ledger_mpt.Ccmpt.prove_clue cc ~clue:"target") in
          (* counter proof nodes + m existence paths *)
          let w = Wire.writer () in
          Ledger_mpt.Mpt.w_proof w proof.Ledger_mpt.Ccmpt.counter_proof;
          List.iter
            (fun (_, _, path) -> Proof_codec.w_path w path)
            proof.Ledger_mpt.Ccmpt.journal_proofs;
          Bytes.length (Wire.contents w)
        in
        ( string_of_int m,
          [ float_of_int cm_bytes; float_of_int cc_bytes;
            float_of_int cc_bytes /. float_of_int cm_bytes ] ))
      m_values
  in
  Table.print_multi_series
    ~title:
      (Printf.sprintf
         "Clue proof sizes (wire bytes) vs entries m (ledger = %s journals)"
         (Workload.size_label n))
    ~x_label:"entries"
    ~series_labels:[ "CM-Tree"; "ccMPT"; "ratio" ]
    rows;
  print_endline
    "\nfam-aoa proofs are flat (O(delta) siblings) while tim paths grow with\n\
     log n; CM-Tree ships one batch proof while ccMPT ships m full paths."
