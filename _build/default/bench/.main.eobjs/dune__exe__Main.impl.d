bench/main.ml: Array Bench_ablations Bench_fig10 Bench_fig5 Bench_fig7 Bench_fig8 Bench_fig9 Bench_micro Bench_proof_size Bench_storage Bench_table1 Bench_table2 List Printf String Sys
