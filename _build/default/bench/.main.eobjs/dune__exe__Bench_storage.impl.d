bench/bench_storage.ml: Accumulator Bim Fam Hash Ledger_bench_util Ledger_crypto Ledger_merkle List Printf Table
