bench/bench_table1.ml: Ledger_baselines Ledger_bench_util List System_profile Table
