bench/bench_fig9.ml: Accumulator Array Ccmpt Cm_tree Det_rng Gc Hash Ledger_bench_util Ledger_cmtree Ledger_crypto Ledger_merkle Ledger_mpt List Printf Table Timing Workload
