bench/bench_fig7.ml: Audit Clock Det_rng Format Hash Ledger Ledger_bench_util Ledger_core Ledger_crypto Ledger_storage Ledger_timenotary List Printf Roles T_ledger Table Tsa
