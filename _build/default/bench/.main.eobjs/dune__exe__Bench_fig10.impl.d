bench/bench_fig10.ml: Clock Det_rng Fabric_sim Ledger_baselines Ledger_bench_util Ledger_storage Ledgerdb_app List Printf Table Timing Workload
