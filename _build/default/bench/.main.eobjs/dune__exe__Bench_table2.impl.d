bench/bench_table2.ml: Clock Det_rng Ledger_baselines Ledger_bench_util Ledger_storage Ledgerdb_app Printf Qldb_sim Table Timing
