bench/main.mli:
