bench/bench_proof_size.ml: Accumulator Bytes Cm_tree Fam Hash Ledger_bench_util Ledger_cmtree Ledger_crypto Ledger_merkle Ledger_mpt List Option Printf Proof_codec Table Wire Workload
