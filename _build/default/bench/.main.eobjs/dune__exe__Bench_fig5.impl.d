bench/bench_fig5.ml: Attack Ledger_bench_util Ledger_timenotary List Printf Table
