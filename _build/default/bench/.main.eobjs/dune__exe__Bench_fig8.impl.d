bench/bench_fig8.ml: Accumulator Bamt Det_rng Fam Hash Ledger_bench_util Ledger_crypto Ledger_merkle List Printf Table Timing Workload
