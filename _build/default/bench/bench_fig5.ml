(* Fig. 5: timestamp attack windows under one-way vs two-way pegging. *)

open Ledger_timenotary
open Ledger_bench_util

let run () =
  Table.print_title
    "Fig. 5 — Malicious time window: one-way vs two-way pegging (delta_tau = 1s)";
  let outcomes =
    Attack.sweep ~delta_tau_s:1.0 ~delays_s:[ 0.1; 0.5; 1.; 5.; 10.; 60.; 600. ]
  in
  Table.print_table
    ~header:
      [ "protocol"; "adversary delay (s)"; "achieved window (s)"; "bounded" ]
    (List.map
       (fun (o : Attack.outcome) ->
         [
           o.protocol;
           Printf.sprintf "%.1f" o.attempted_delay_s;
           Printf.sprintf "%.2f" o.window_s;
           (if o.bounded then "yes (<= 2*delta_tau)" else "no (unbounded)");
         ])
       outcomes);
  print_endline
    "\nPaper claim: one-way pegging admits infinite time amplification;\n\
     the two-way protocol bounds the window by 2*delta_tau (Fig. 5(b))."
