(* Table I: qualitative comparison of ledger systems. *)

open Ledger_baselines
open Ledger_bench_util

let run () =
  Table.print_title "Table I — Comparison of verification in ledger systems";
  Table.print_table ~header:System_profile.header
    (List.map System_profile.to_row System_profile.all);
  print_endline
    "\n(Rows marked with a module name are exercised by this repository's\n\
     tests and benches; the others are reproduced from the paper.)"
