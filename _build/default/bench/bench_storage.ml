(* Storage-overhead comparison backing Table I's "Storage Overhead" column:
   digests a server must keep and bytes a light verifier must hold, per
   accumulator model, at the same ledger size. *)

open Ledger_crypto
open Ledger_merkle
open Ledger_bench_util

let leaf i = Hash.digest_string ("tx" ^ string_of_int i)

let run () =
  let n = 1 lsl 14 in
  Table.print_title
    (Printf.sprintf
       "Storage overhead per model at %d journals (backs Table I's column)" n);
  (* tim: one global accumulator, all interior nodes *)
  let tim = Accumulator.create () in
  for i = 0 to n - 1 do
    ignore (Accumulator.append tim (leaf i))
  done;
  (* bim: Bitcoin-style 1000-tx blocks; light client keeps every header *)
  let bim = Bim.create ~block_size:1000 in
  for i = 0 to n - 1 do
    ignore (Bim.append bim (leaf i))
  done;
  Bim.flush bim;
  (* fam-10: epoch interiors before the anchor can be erased after purge *)
  let fam = Fam.create ~delta:10 in
  for i = 0 to n - 1 do
    ignore (Fam.append fam (leaf i))
  done;
  let fam_full = Fam.stored_digests fam in
  let e, _ = Fam.epoch_of_jsn fam (n - 1) in
  Fam.purge_epochs_before fam e;
  let fam_pruned = Fam.stored_digests fam in
  (* light-verifier state: tim needs the root; bim all headers; fam the
     sealed epoch roots + live node-set (the anchor) *)
  let fam_anchor_bytes = 32 * (Fam.epoch_count fam - 1 + List.length (Fam.peaks fam)) in
  Table.print_table
    ~header:[ "model"; "server digests stored"; "light-verifier bytes" ]
    [
      [ "tim (Diem/QLDB)"; string_of_int (Accumulator.stored_digests tim); "32" ];
      [ "bim (Bitcoin, 1000-tx blocks)";
        string_of_int (Bim.size bim + Bim.block_count bim);
        string_of_int (Bim.header_bytes bim) ];
      [ "fam-10 (full retention)"; string_of_int fam_full;
        string_of_int fam_anchor_bytes ];
      [ "fam-10 (after purge erasure)"; string_of_int fam_pruned;
        string_of_int fam_anchor_bytes ];
    ];
  print_endline
    "\ntim keeps every interior digest and its verifier state is one root but\n\
     proofs grow with n; bim's verifier must hold O(#blocks) headers; fam\n\
     bounds verifier state by (epochs + delta) digests and can erase purged\n\
     epoch interiors entirely — the paper's 'Lowest' storage overhead."
