(* Fig. 9: clue verification — CM-Tree vs ccMPT.

   Setup per §VI-C: clues receive 1–100 journals each (1 KB average
   journal).  ccMPT verification proves the clue counter in the MPT and
   then each journal's existence against the global tim accumulator
   (O(m log n)); CM-Tree verification reconstructs the clue's own
   accumulator (O(m)) plus one trie walk. *)

open Ledger_crypto
open Ledger_merkle
open Ledger_mpt
open Ledger_cmtree
open Ledger_bench_util

let journal_digest i = Hash.digest_string ("journal-" ^ string_of_int i)

type setup = {
  cm : Cm_tree.t;
  cc : Ccmpt.t;
  acc : Accumulator.t;
  clues : string array;
  clue_of_jsn : string array;
}

let build ~rng ~n ~clue_count =
  let acc = Accumulator.create () in
  let cm = Cm_tree.create () in
  let cc = Ccmpt.create acc in
  let clues = Array.init clue_count (fun c -> Printf.sprintf "clue-%06d" c) in
  let clue_of_jsn = Array.make n "" in
  for i = 0 to n - 1 do
    let clue = Det_rng.pick rng clues in
    let d = journal_digest i in
    ignore (Accumulator.append acc d);
    ignore (Cm_tree.insert cm ~clue d);
    Ccmpt.add cc ~clue ~jsn:i;
    clue_of_jsn.(i) <- clue
  done;
  { cm; cc; acc; clues; clue_of_jsn }

let known_for setup clue =
  List.mapi
    (fun version jsn -> (version, journal_digest jsn))
    (Ccmpt.jsns setup.cc ~clue)

let verify_cm setup clue =
  match Cm_tree.prove_clue setup.cm ~clue () with
  | None -> false
  | Some proof ->
      Cm_tree.verify_clue ~root:(Cm_tree.root_hash setup.cm)
        ~known:(known_for setup clue) proof

let verify_cc setup clue =
  match Ccmpt.prove_clue setup.cc ~clue with
  | None -> false
  | Some proof ->
      Ccmpt.verify_clue setup.cc ~clue
        ~mpt_root:(Ccmpt.root_hash setup.cc)
        ~acc_root:(Accumulator.root setup.acc)
        proof

let run_throughput ~big () =
  let sizes =
    if big then [ 1 lsl 10; 1 lsl 12; 1 lsl 14; 1 lsl 16; 1 lsl 18 ]
    else [ 1 lsl 10; 1 lsl 12; 1 lsl 14; 1 lsl 16 ]
  in
  let rows =
    List.map
      (fun n ->
        let rng = Det_rng.create ~seed:(42 + n) in
        (* ~50 journals per clue on average (1..100 uniform) *)
        let clue_count = max 4 (n / 50) in
        let setup = build ~rng ~n ~clue_count in
        let probes = if n >= 1 lsl 16 then 200 else 400 in
        Gc.full_major ();
        let cm_tps =
          Timing.wall_throughput ~n:probes (fun _ ->
              assert (verify_cm setup (Det_rng.pick rng setup.clues)))
        in
        Gc.full_major ();
        let cc_tps =
          Timing.wall_throughput ~n:probes (fun _ ->
              assert (verify_cc setup (Det_rng.pick rng setup.clues)))
        in
        ( Workload.size_label n,
          [ cm_tps; cc_tps; cm_tps /. cc_tps ] ))
      sizes
  in
  Table.print_multi_series
    ~title:"Fig. 9(a) — Clue verification throughput (TPS) vs ledger size"
    ~x_label:"journals"
    ~series_labels:[ "CM-Tree"; "ccMPT"; "speedup" ]
    rows;
  print_endline
    "\nPaper shape: CM-Tree is flat (per-clue accumulators decouple it from\n\
     ledger growth); ccMPT decays as O(m log n), so the speedup widens with\n\
     ledger size (16x at 32K -> 33x at 32G in the paper)."

let run_latency ~big () =
  (* fixed ledger of background journals, one clue with k entries *)
  let background = if big then 1 lsl 18 else 1 lsl 15 in
  let entry_counts =
    if big then [ 10; 100; 1000; 10000 ] else [ 10; 100; 1000; 5000 ]
  in
  let rng = Det_rng.create ~seed:99 in
  let rows =
    List.map
      (fun k ->
        let acc = Accumulator.create () in
        let cm = Cm_tree.create () in
        let cc = Ccmpt.create acc in
        let clues = Array.init 64 (fun c -> Printf.sprintf "bg-%04d" c) in
        for i = 0 to background - 1 do
          let d = journal_digest i in
          ignore (Accumulator.append acc d);
          let clue = Det_rng.pick rng clues in
          ignore (Cm_tree.insert cm ~clue d);
          Ccmpt.add cc ~clue ~jsn:i
        done;
        let target = "target-clue" in
        for j = 0 to k - 1 do
          let i = background + j in
          let d = journal_digest i in
          ignore (Accumulator.append acc d);
          ignore (Cm_tree.insert cm ~clue:target d);
          Ccmpt.add cc ~clue:target ~jsn:i
        done;
        let setup = { cm; cc; acc; clues; clue_of_jsn = [||] } in
        let cm_ms = Timing.repeat_median_ms (fun () -> assert (verify_cm setup target)) in
        let cc_ms = Timing.repeat_median_ms (fun () -> assert (verify_cc setup target)) in
        (string_of_int k, [ cm_ms; cc_ms; cc_ms /. cm_ms ]))
      entry_counts
  in
  Table.print_multi_series
    ~title:
      (Printf.sprintf
         "Fig. 9(b) — Clue verification latency (ms) vs clue entries (ledger = %s journals)"
         (Workload.size_label background))
    ~x_label:"entries"
    ~series_labels:[ "CM-Tree (ms)"; "ccMPT (ms)"; "ccMPT/CM-Tree" ]
    rows;
  print_endline
    "\nPaper shape: both grow with the entry count, but ccMPT grows with an\n\
     O(log n) factor per entry; the gap widens with more entries (24x at\n\
     10000 entries in the paper)."

let run ?(big = false) () =
  run_throughput ~big ();
  run_latency ~big ()
