(* Ablations for the design choices DESIGN.md calls out:
   - trusted anchors (fam-aoa) vs full chained fam proofs;
   - Shrubs O(1) frontier insertion vs naive full-rebuild Merkle insertion;
   - two-way vs one-way pegging is already the Fig. 5 harness. *)

open Ledger_crypto
open Ledger_merkle
open Ledger_bench_util

let leaf i = Hash.digest_string ("leaf" ^ string_of_int i)

let run_anchor () =
  let n = 1 lsl 14 in
  let delta = 8 in
  let fam = Fam.create ~delta in
  for i = 0 to n - 1 do
    ignore (Fam.append fam (leaf i))
  done;
  let anchor = Fam.make_anchor fam in
  let commitment = Fam.commitment fam in
  let rng = Det_rng.create ~seed:3 in
  let probes = 2000 in
  let anchored_tps =
    Timing.wall_throughput ~n:probes (fun _ ->
        let i = Det_rng.int rng n in
        let p = Fam.prove_anchored fam anchor i in
        assert (Fam.verify_anchored anchor ~current_commitment:commitment ~leaf:(leaf i) p))
  in
  let full_tps =
    Timing.wall_throughput ~n:probes (fun _ ->
        let i = Det_rng.int rng n in
        let p = Fam.prove fam i in
        assert (Fam.verify ~commitment ~leaf:(leaf i) p))
  in
  (* average proof sizes *)
  let avg_steps f =
    let total = ref 0 in
    for _ = 1 to 256 do
      total := !total + f (Det_rng.int rng n)
    done;
    float_of_int !total /. 256.
  in
  let anchored_steps =
    avg_steps (fun i ->
        match Fam.prove_anchored fam anchor i with
        | Fam.Within_sealed { path; _ } -> Proof.length path
        | Fam.Beyond_anchor p ->
            List.fold_left (fun a pth -> a + Proof.length pth) 0 p.Fam.epoch_paths)
  in
  let full_steps =
    avg_steps (fun i ->
        let p = Fam.prove fam i in
        List.fold_left (fun a pth -> a + Proof.length pth) 0 p.Fam.epoch_paths)
  in
  Table.print_title
    (Printf.sprintf
       "Ablation — trusted anchors (fam-aoa) vs full chained proofs (fam-%d, %d journals)"
       delta n);
  Table.print_table
    ~header:[ "variant"; "verify TPS"; "avg proof steps" ]
    [
      [ "fam-aoa (anchored)"; Table.human_rate anchored_tps;
        Printf.sprintf "%.1f" anchored_steps ];
      [ "fam (full chain)"; Table.human_rate full_tps;
        Printf.sprintf "%.1f" full_steps ];
      [ "speedup"; Printf.sprintf "%.1fx" (anchored_tps /. full_tps);
        Printf.sprintf "%.1fx fewer" (full_steps /. anchored_steps) ];
    ]

let run_shrubs () =
  let n = 1 lsl 12 in
  Table.print_title
    (Printf.sprintf
       "Ablation — Shrubs O(1) frontier insertion vs naive full-rebuild (%d leaves)" n);
  let shrubs_tps =
    let s = Shrubs.create () in
    Timing.wall_throughput ~n (fun i -> ignore (Shrubs.append s (leaf i)))
  in
  (* naive: rebuild the whole Merkle tree after every insertion *)
  let naive_n = 1 lsl 9 in
  let naive_tps =
    let acc = ref [] in
    Timing.wall_throughput ~n:naive_n (fun i ->
        acc := leaf i :: !acc;
        ignore (Merkle_tree.root (Merkle_tree.build (List.rev !acc))))
  in
  Table.print_table
    ~header:[ "variant"; "insert TPS" ]
    [
      [ "Shrubs (frontier)"; Table.human_rate shrubs_tps ];
      [ Printf.sprintf "naive rebuild (measured on %d)" naive_n;
        Table.human_rate naive_tps ];
      [ "speedup"; Printf.sprintf "%.0fx" (shrubs_tps /. naive_tps) ];
    ]



(* §IV-B2: CM-Tree1 keeps its top layers in memory and the rest on disk.
   Sweep the cached depth and charge one random I/O per uncached level
   touched during a clue lookup. *)
let run_mpt_cache () =
  let open Ledger_cmtree in
  let open Ledger_storage in
  let clue_count = 20000 in
  let cm = Cm_tree.create () in
  for c = 0 to clue_count - 1 do
    ignore
      (Cm_tree.insert cm
         ~clue:(Printf.sprintf "clue-%08d" c)
         (Hash.digest_string (string_of_int c)))
  done;
  let rng = Det_rng.create ~seed:21 in
  let probes = 512 in
  let seek_ms = 0.1 in
  let rows =
    List.map
      (fun cache_levels ->
        let clock = Clock.create () in
        for _ = 1 to probes do
          let clue = Printf.sprintf "clue-%08d" (Det_rng.int rng clue_count) in
          let depth = Cm_tree.mpt_lookup_depth cm ~clue in
          let disk_levels = max 0 (depth - cache_levels) in
          Clock.advance clock
            (Int64.of_float (float_of_int disk_levels *. seek_ms *. 1000.))
        done;
        let avg_ms =
          Clock.ms_of_us (Clock.now clock) /. float_of_int probes
        in
        ( string_of_int cache_levels,
          [ avg_ms; 16. ** float_of_int cache_levels *. 532. /. 1048576. ] ))
      [ 0; 1; 2; 3; 4; 5; 6 ]
  in
  Table.print_multi_series
    ~title:
      (Printf.sprintf
         "Ablation — CM-Tree1 top-layer cache depth (%d clues, %.1f ms/seek)"
         clue_count seek_ms)
    ~x_label:"cached levels"
    ~series_labels:[ "avg lookup I/O (ms)"; "cache memory (MB, est.)" ]
    rows;
  print_endline
    "\nPaper note (§IV-B2): top 6-layers caching costs ~512 MB and removes\n\
     nearly all trie I/O; the sweep shows the latency/memory trade-off."


(* Incremental auditing: a returning auditor with a trusted anchor checks
   an extension proof and audits only the suffix, instead of replaying
   from genesis.  Measures both wall time and verification-object size. *)
let run_incremental_audit () =
  let open Ledger_storage in
  let open Ledger_core in
  let open Ledger_timenotary in
  let clock = Clock.create () in
  let pool = Tsa.pool [ Tsa.create ~endorse_rtt_ms:1. ~clock "inc" ] in
  let tl = T_ledger.create ~clock ~tsa:pool () in
  let config =
    { Ledger.default_config with name = "inc-audit"; block_size = 64;
      fam_delta = 8; crypto = Crypto_profile.default_simulated }
  in
  let ledger = Ledger.create ~config ~t_ledger:tl ~tsa:pool ~clock () in
  let user, key = Ledger.new_member ledger ~name:"u" ~role:Roles.Regular_user in
  let append n =
    for _ = 1 to n do
      Clock.advance_ms clock 5.;
      ignore
        (Ledger.append ledger ~member:user ~priv:key ~clues:[ "k" ]
           (Bytes.of_string "payload"))
    done
  in
  let base = 4096 and suffix = 256 in
  append base;
  let old_size = Ledger.size ledger in
  let old_peaks = Ledger_merkle.Fam.anchor_peaks (Ledger.make_anchor ledger) in
  append suffix;
  let full_ms =
    Timing.repeat_median_ms ~repeats:3 (fun () ->
        assert (Audit.run ledger).Audit.ok)
  in
  let incremental_ms =
    Timing.repeat_median_ms ~repeats:3 (fun () ->
        let proof = Ledger.prove_extension ledger ~old_size in
        assert (Ledger.verify_extension ledger ~old_size ~old_peaks proof);
        assert (Audit.run ~from_jsn:old_size ledger).Audit.ok)
  in
  let proof_bytes =
    Bytes.length
      (Ledger_merkle.Proof_codec.encode_fam_extension
         (Ledger.prove_extension ledger ~old_size))
  in
  Table.print_title
    (Printf.sprintf
       "Ablation — incremental audit (%d-journal ledger, %d-journal suffix)"
       (base + suffix) suffix);
  Table.print_table
    ~header:[ "strategy"; "wall time"; "extra data" ]
    [
      [ "full re-audit from genesis"; Table.human_ms full_ms; "-" ];
      [ "extension proof + suffix audit"; Table.human_ms incremental_ms;
        Printf.sprintf "%d-byte proof" proof_bytes ];
      [ "speedup"; Printf.sprintf "%.1fx" (full_ms /. incremental_ms); "" ];
    ];
  print_endline
    "\nThe fam extension proof pins the suffix to the auditor's trusted\n\
     anchor, so periodic audits cost O(new journals), not O(ledger)."


(* cSL vs naive list index for clue retrieval (§IV-A's "fast O(1)
   insertion and O(log n) read"). *)
let run_skiplist () =
  let open Ledger_cmtree in
  let n = 1 lsl 17 in
  let sl = Clue_skiplist.create () in
  let arr = Array.init n (fun i -> i * 3) in
  Array.iter (Clue_skiplist.append sl) arr;
  let rng = Det_rng.create ~seed:8 in
  let probes = 20000 in
  let sl_tps =
    Timing.wall_throughput ~n:probes (fun _ ->
        ignore (Clue_skiplist.mem sl (Det_rng.int rng (3 * n))))
  in
  let lst = Array.to_list arr in
  let naive_probes = 200 in
  let naive_tps =
    Timing.wall_throughput ~n:naive_probes (fun _ ->
        let target = Det_rng.int rng (3 * n) in
        ignore (List.exists (fun x -> x = target) lst))
  in
  let avg_steps =
    let total = ref 0 in
    for _ = 1 to 256 do
      total := !total + Clue_skiplist.search_steps sl (Det_rng.int rng (3 * n))
    done;
    float_of_int !total /. 256.
  in
  Table.print_title
    (Printf.sprintf "Ablation — cSL skip list vs naive list index (%d jsns)" n);
  Table.print_table
    ~header:[ "index"; "lookup TPS"; "avg node visits" ]
    [
      [ "cSL (skip list)"; Table.human_rate sl_tps; Printf.sprintf "%.1f" avg_steps ];
      [ Printf.sprintf "naive list scan (measured on %d)" naive_probes;
        Table.human_rate naive_tps; Printf.sprintf "%.0f" (float_of_int n /. 2.) ];
      [ "speedup"; Printf.sprintf "%.0fx" (sl_tps /. naive_tps); "" ];
    ]

let run () =
  run_anchor ();
  run_shrubs ();
  run_mpt_cache ();
  run_incremental_audit ();
  run_skiplist ()
