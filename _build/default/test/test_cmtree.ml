(* Tests for the two-layer CM-Tree and its clue-oriented verification. *)

open Ledger_crypto
open Ledger_cmtree

let tc = Alcotest.test_case
let qcheck = QCheck_alcotest.to_alcotest
let jd i = Hash.digest_string ("journal" ^ string_of_int i)

let build ~clues ~per_clue =
  let cm = Cm_tree.create () in
  for c = 0 to clues - 1 do
    for v = 0 to per_clue - 1 do
      ignore (Cm_tree.insert cm ~clue:("clue" ^ string_of_int c) (jd ((c * 1000) + v)))
    done
  done;
  cm

let known ~clue_id ~first ~last =
  List.init (last - first + 1) (fun k -> (first + k, jd ((clue_id * 1000) + first + k)))

let test_insert_and_entries () =
  let cm = build ~clues:10 ~per_clue:8 in
  Alcotest.(check int) "clue count" 10 (Cm_tree.clue_count cm);
  Alcotest.(check int) "entries" 8 (Cm_tree.entries cm ~clue:"clue3");
  Alcotest.(check int) "unknown entries" 0 (Cm_tree.entries cm ~clue:"nope");
  Alcotest.(check bool) "entry digest" true
    (Hash.equal (jd 3002) (Cm_tree.entry cm ~clue:"clue3" 2));
  Alcotest.(check int) "versions returned by insert" 8
    (Cm_tree.insert cm ~clue:"clue3" (jd 3008));
  Alcotest.(check bool) "commitment exists" true
    (Cm_tree.clue_commitment cm ~clue:"clue3" <> None);
  Alcotest.(check bool) "depth positive" true
    (Cm_tree.mpt_lookup_depth cm ~clue:"clue3" > 0)

let test_whole_clue_verification () =
  let cm = build ~clues:25 ~per_clue:6 in
  let root = Cm_tree.root_hash cm in
  for c = 0 to 24 do
    let clue = "clue" ^ string_of_int c in
    let proof = Option.get (Cm_tree.prove_clue cm ~clue ()) in
    Alcotest.(check bool)
      (Printf.sprintf "clue %d verifies" c)
      true
      (Cm_tree.verify_clue ~root ~known:(known ~clue_id:c ~first:0 ~last:5) proof)
  done

let test_range_verification () =
  let cm = build ~clues:5 ~per_clue:20 in
  let root = Cm_tree.root_hash cm in
  let proof = Option.get (Cm_tree.prove_clue cm ~clue:"clue2" ~first:7 ~last:12 ()) in
  Alcotest.(check bool) "range verifies" true
    (Cm_tree.verify_clue ~root ~known:(known ~clue_id:2 ~first:7 ~last:12) proof);
  Alcotest.(check bool) "incomplete range fails" false
    (Cm_tree.verify_clue ~root ~known:(known ~clue_id:2 ~first:7 ~last:11) proof)

let test_rejects_tampered_entry () =
  let cm = build ~clues:3 ~per_clue:10 in
  let root = Cm_tree.root_hash cm in
  let proof = Option.get (Cm_tree.prove_clue cm ~clue:"clue1" ()) in
  let bad =
    (4, jd 987654) :: List.remove_assoc 4 (known ~clue_id:1 ~first:0 ~last:9)
  in
  Alcotest.(check bool) "tampered entry rejected" false
    (Cm_tree.verify_clue ~root ~known:bad proof)

let test_rejects_wrong_root () =
  let cm = build ~clues:3 ~per_clue:4 in
  let proof = Option.get (Cm_tree.prove_clue cm ~clue:"clue0" ()) in
  let old_root = Cm_tree.root_hash cm in
  ignore (Cm_tree.insert cm ~clue:"clue0" (jd 555));
  Alcotest.(check bool) "stale proof vs new root" false
    (Cm_tree.verify_clue ~root:(Cm_tree.root_hash cm)
       ~known:(known ~clue_id:0 ~first:0 ~last:3)
       proof);
  Alcotest.(check bool) "stale proof vs old root ok" true
    (Cm_tree.verify_clue ~root:old_root
       ~known:(known ~clue_id:0 ~first:0 ~last:3)
       proof)

let test_rejects_forged_committed_value () =
  (* a malicious server substituting another clue's committed node-set is
     caught by the trie proof *)
  let cm = build ~clues:2 ~per_clue:4 in
  let root = Cm_tree.root_hash cm in
  let p0 = Option.get (Cm_tree.prove_clue cm ~clue:"clue0" ()) in
  let p1 = Option.get (Cm_tree.prove_clue cm ~clue:"clue1" ()) in
  let forged = { p0 with Cm_tree.committed_value = p1.Cm_tree.committed_value } in
  Alcotest.(check bool) "swapped committed value rejected" false
    (Cm_tree.verify_clue ~root ~known:(known ~clue_id:0 ~first:0 ~last:3) forged)

let test_server_side_verification () =
  let cm = build ~clues:4 ~per_clue:5 in
  Alcotest.(check bool) "server verify ok" true
    (Cm_tree.verify_clue_server cm ~known:(known ~clue_id:2 ~first:0 ~last:4)
       ~clue:"clue2");
  let bad = [ (0, jd 31337) ] in
  Alcotest.(check bool) "server detects bad digest" false
    (Cm_tree.verify_clue_server cm ~known:bad ~clue:"clue2");
  Alcotest.(check bool) "server rejects unknown clue" false
    (Cm_tree.verify_clue_server cm ~known:[ (0, jd 0) ] ~clue:"nope");
  Alcotest.(check bool) "server rejects out-of-range version" false
    (Cm_tree.verify_clue_server cm ~known:[ (99, jd 0) ] ~clue:"clue2")

let prop_cm_matches_model =
  (* CM-Tree behaves like (clue -> digest list) built independently *)
  QCheck.Test.make ~name:"cm-tree agrees with assoc-list model" ~count:40
    QCheck.(small_list (pair (int_range 0 8) (int_range 0 1000)))
    (fun ops ->
      let cm = Cm_tree.create () in
      let model : (string, Hash.t list ref) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun (c, v) ->
          let clue = "c" ^ string_of_int c in
          let d = Hash.digest_string (Printf.sprintf "%d:%d" c v) in
          ignore (Cm_tree.insert cm ~clue d);
          match Hashtbl.find_opt model clue with
          | Some r -> r := d :: !r
          | None -> Hashtbl.replace model clue (ref [ d ]))
        ops;
      Hashtbl.fold
        (fun clue r acc ->
          let expected = List.rev !r in
          acc
          && Cm_tree.entries cm ~clue = List.length expected
          && List.for_all2 Hash.equal expected
               (List.init (List.length expected) (Cm_tree.entry cm ~clue)))
        model true)

let prop_cm_proofs_random =
  QCheck.Test.make ~name:"cm-tree random clue proofs verify" ~count:30
    (QCheck.pair (QCheck.int_range 1 12) (QCheck.int_range 1 30))
    (fun (clues, per_clue) ->
      let cm = build ~clues ~per_clue in
      let root = Cm_tree.root_hash cm in
      List.for_all
        (fun c ->
          let clue = "clue" ^ string_of_int c in
          match Cm_tree.prove_clue cm ~clue () with
          | None -> false
          | Some proof ->
              Cm_tree.verify_clue ~root
                ~known:(known ~clue_id:c ~first:0 ~last:(per_clue - 1))
                proof)
        (List.init clues Fun.id))

let base_suite =
  [
    tc "insert and entries" `Quick test_insert_and_entries;
    tc "whole clue verification" `Quick test_whole_clue_verification;
    tc "range verification" `Quick test_range_verification;
    tc "tampered entry rejected" `Quick test_rejects_tampered_entry;
    tc "wrong root rejected" `Quick test_rejects_wrong_root;
    tc "forged committed value rejected" `Quick test_rejects_forged_committed_value;
    tc "server-side verification" `Quick test_server_side_verification;
    qcheck prop_cm_matches_model;
    qcheck prop_cm_proofs_random;
  ]

(* --- cSL: the clue skip list index (§IV-A) -------------------------------- *)

let test_skiplist_basics () =
  let sl = Clue_skiplist.create () in
  Alcotest.(check int) "empty" 0 (Clue_skiplist.length sl);
  Alcotest.(check (option int)) "no min" None (Clue_skiplist.min_elt sl);
  List.iter (Clue_skiplist.append sl) [ 3; 7; 8; 20; 21; 100 ];
  Alcotest.(check int) "length" 6 (Clue_skiplist.length sl);
  Alcotest.(check (option int)) "min" (Some 3) (Clue_skiplist.min_elt sl);
  Alcotest.(check (option int)) "max" (Some 100) (Clue_skiplist.max_elt sl);
  Alcotest.(check bool) "mem hit" true (Clue_skiplist.mem sl 20);
  Alcotest.(check bool) "mem miss" false (Clue_skiplist.mem sl 19);
  Alcotest.(check (option int)) "nth 0" (Some 3) (Clue_skiplist.nth sl 0);
  Alcotest.(check (option int)) "nth 4" (Some 21) (Clue_skiplist.nth sl 4);
  Alcotest.(check (option int)) "nth out" None (Clue_skiplist.nth sl 6);
  Alcotest.(check (list int)) "to_list" [ 3; 7; 8; 20; 21; 100 ]
    (Clue_skiplist.to_list sl);
  Alcotest.(check (list int)) "range" [ 7; 8; 20 ]
    (Clue_skiplist.range sl ~lo:4 ~hi:20);
  Alcotest.(check (list int)) "empty range" [] (Clue_skiplist.range sl ~lo:50 ~hi:20);
  Alcotest.check_raises "monotone keys enforced"
    (Invalid_argument "Clue_skiplist.append: keys must be strictly increasing")
    (fun () -> Clue_skiplist.append sl 100)

let prop_skiplist_model =
  QCheck.Test.make ~name:"skip list agrees with sorted-list model" ~count:50
    QCheck.(small_list small_nat)
    (fun deltas ->
      let sl = Clue_skiplist.create () in
      let keys =
        List.rev
          (snd
             (List.fold_left
                (fun (last, acc) d ->
                  let k = last + 1 + d in
                  Clue_skiplist.append sl k;
                  (k, k :: acc))
                (-1, []) deltas))
      in
      Clue_skiplist.to_list sl = keys
      && List.for_all (Clue_skiplist.mem sl) keys
      && List.for_all2
           (fun i k -> Clue_skiplist.nth sl i = Some k)
           (List.init (List.length keys) Fun.id)
           keys)

let test_skiplist_logarithmic_search () =
  let sl = Clue_skiplist.create () in
  let n = 1 lsl 14 in
  for i = 0 to n - 1 do
    Clue_skiplist.append sl i
  done;
  (* average search cost should be O(log n), far below n *)
  let total = ref 0 in
  let probes = 200 in
  for k = 1 to probes do
    total := !total + Clue_skiplist.search_steps sl (k * 81 mod n)
  done;
  let avg = float_of_int !total /. float_of_int probes in
  Alcotest.(check bool)
    (Printf.sprintf "avg steps %.1f is logarithmic" avg)
    true
    (avg < 8. *. log (float_of_int n));
  Alcotest.(check bool) "multiple levels in use" true
    (Clue_skiplist.level_count sl > 5)

let skiplist_suite =
  [
    tc "skip list basics" `Quick test_skiplist_basics;
    qcheck prop_skiplist_model;
    tc "skip list O(log n) search" `Quick test_skiplist_logarithmic_search;
  ]



(* --- lineage extension proofs ------------------------------------------------ *)

let test_clue_extension () =
  let cm = Cm_tree.create () in
  for v = 0 to 5 do
    ignore (Cm_tree.insert cm ~clue:"asset" (jd v))
  done;
  (* client reads the clue: keeps the committed value *)
  let old_proof = Option.get (Cm_tree.prove_clue cm ~clue:"asset" ()) in
  let old_value = old_proof.Cm_tree.committed_value in
  (* lineage grows *)
  for v = 6 to 13 do
    ignore (Cm_tree.insert cm ~clue:"asset" (jd v))
  done;
  let new_proof = Option.get (Cm_tree.prove_clue cm ~clue:"asset" ()) in
  let new_value = new_proof.Cm_tree.committed_value in
  let ext = Option.get (Cm_tree.prove_clue_extension cm ~clue:"asset" ~old_size:6) in
  Alcotest.(check bool) "honest growth verifies" true
    (Cm_tree.verify_clue_extension ~old_value ~new_value ext);
  (* a rewritten history cannot produce a valid extension proof *)
  let forged = Cm_tree.create () in
  for v = 0 to 13 do
    ignore (Cm_tree.insert forged ~clue:"asset" (jd (if v = 2 then 999 else v)))
  done;
  let forged_proof = Option.get (Cm_tree.prove_clue forged ~clue:"asset" ()) in
  let forged_ext =
    Option.get (Cm_tree.prove_clue_extension forged ~clue:"asset" ~old_size:6)
  in
  Alcotest.(check bool) "rewrite rejected" false
    (Cm_tree.verify_clue_extension ~old_value
       ~new_value:forged_proof.Cm_tree.committed_value forged_ext);
  (* out-of-range requests *)
  Alcotest.(check bool) "bad old size" true
    (Cm_tree.prove_clue_extension cm ~clue:"asset" ~old_size:99 = None);
  Alcotest.(check bool) "unknown clue" true
    (Cm_tree.prove_clue_extension cm ~clue:"nope" ~old_size:1 = None)

let extension_suite = [ tc "clue lineage extension" `Quick test_clue_extension ]

let suite = base_suite @ skiplist_suite @ extension_suite
