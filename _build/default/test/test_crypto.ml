(* Unit and property tests for the cryptographic substrate. *)

open Ledger_crypto

let check = Alcotest.check
let tc = Alcotest.test_case

(* --- SHA-256 / SHA-3 / HMAC test vectors --------------------------------- *)

let hex_of_bytes b =
  String.concat ""
    (List.init (Bytes.length b) (fun i ->
         Printf.sprintf "%02x" (Char.code (Bytes.get b i))))

let test_sha256_vectors () =
  let cases =
    [
      ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
      ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
      ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ]
  in
  List.iter
    (fun (msg, expected) ->
      check Alcotest.string msg expected (hex_of_bytes (Sha256.digest_string msg)))
    cases;
  check Alcotest.string "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (hex_of_bytes (Sha256.digest_string (String.make 1_000_000 'a')))

let test_sha256_streaming () =
  (* absorbing in arbitrary chunks must match the one-shot digest *)
  let msg = String.init 1000 (fun i -> Char.chr (i mod 251)) in
  let one_shot = Sha256.digest_string msg in
  let ctx = Sha256.init () in
  let rec absorb off =
    if off < String.length msg then begin
      let len = min (1 + (off mod 97)) (String.length msg - off) in
      Sha256.update_sub ctx (Bytes.of_string msg) off len;
      absorb (off + len)
    end
  in
  absorb 0;
  check Alcotest.string "streaming = one-shot" (hex_of_bytes one_shot)
    (hex_of_bytes (Sha256.finalize ctx))

let test_sha3_vectors () =
  let cases =
    [
      ("", "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a");
      ("abc", "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532");
      ( String.make 200 '\xa3',
        "79f38adec5c20307a98ef76e8324afbfd46cfd81b22e3973c65fa1bd9de31787" );
    ]
  in
  List.iter
    (fun (msg, expected) ->
      check Alcotest.string "sha3" expected (hex_of_bytes (Sha3.digest_string msg)))
    cases

let test_hmac_vectors () =
  (* RFC 4231 cases 1, 2, and 3 *)
  let tag1 =
    Hmac_sha256.mac ~key:(Bytes.make 20 '\x0b') (Bytes.of_string "Hi There")
  in
  check Alcotest.string "rfc4231 case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (hex_of_bytes tag1);
  let tag2 = Hmac_sha256.mac_string ~key:"Jefe" "what do ya want for nothing?" in
  check Alcotest.string "rfc4231 case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (hex_of_bytes tag2);
  let tag3 =
    Hmac_sha256.mac ~key:(Bytes.make 20 '\xaa') (Bytes.make 50 '\xdd')
  in
  check Alcotest.string "rfc4231 case 3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (hex_of_bytes tag3)

(* --- Hash ---------------------------------------------------------------- *)

let test_hash_roundtrip () =
  let h = Hash.digest_string "hello" in
  check Alcotest.string "hex roundtrip" (Hash.to_hex h)
    (Hash.to_hex (Hash.of_hex (Hash.to_hex h)));
  check Alcotest.bool "bytes roundtrip" true
    (Hash.equal h (Hash.of_bytes (Hash.to_bytes h)));
  check Alcotest.bool "combine is ordered" false
    (Hash.equal (Hash.combine h Hash.zero) (Hash.combine Hash.zero h));
  check Alcotest.bool "tagged separates domains" false
    (Hash.equal (Hash.combine_tagged "a" h h) (Hash.combine_tagged "b" h h))

(* --- Uint256 ------------------------------------------------------------- *)

let u256 = Alcotest.testable Uint256.pp Uint256.equal

let arb_u256 =
  QCheck.map
    (fun (a, b, c, d) ->
      let buf = Bytes.create 32 in
      List.iteri
        (fun i v -> Bytes.set_int64_be buf (8 * i) v)
        [ a; b; c; d ];
      Uint256.of_bytes_be buf)
    (QCheck.quad QCheck.int64 QCheck.int64 QCheck.int64 QCheck.int64)

let test_u256_basics () =
  check u256 "of_int 0" Uint256.zero (Uint256.of_int 0);
  check (Alcotest.option Alcotest.int) "to_int" (Some 123456)
    (Uint256.to_int_opt (Uint256.of_int 123456));
  check Alcotest.int "num_bits 1" 1 (Uint256.num_bits Uint256.one);
  check Alcotest.int "num_bits 255"
    256
    (Uint256.num_bits
       (Uint256.of_hex
          "8000000000000000000000000000000000000000000000000000000000000000"));
  let x = Uint256.of_hex "deadbeef" in
  check Alcotest.bool "bit 0" true (Uint256.bit x 0);
  check Alcotest.bool "bit 4" false (Uint256.bit x 4);
  (* shifting *)
  check u256 "shift roundtrip" x
    (Uint256.shift_right (Uint256.shift_left x 13) 13)

let prop_add_sub_roundtrip =
  QCheck.Test.make ~name:"u256 (a+b)-b = a" ~count:300
    (QCheck.pair arb_u256 arb_u256)
    (fun (a, b) ->
      let s, _ = Uint256.add a b in
      let d, _ = Uint256.sub s b in
      Uint256.equal d a)

let prop_mul_matches_divmod =
  QCheck.Test.make ~name:"u256 divmod inverts mul" ~count:200
    (QCheck.pair arb_u256 arb_u256)
    (fun (a, m) ->
      QCheck.assume (not (Uint256.is_zero m));
      let q, r = Uint256.div_mod a m in
      (* a = q*m + r with r < m; verify via wide arithmetic mod 2^512 *)
      let qm = Uint256.mul_wide q m in
      let rl = Uint256.limbs r in
      let sum = Array.copy qm in
      let carry = ref 0 in
      for i = 0 to 15 do
        let s = sum.(i) + rl.(i) + !carry in
        sum.(i) <- s land 0xFFFF;
        carry := s lsr 16
      done;
      let rec prop i c =
        if c = 0 then true
        else begin
          let s = sum.(i) + c in
          sum.(i) <- s land 0xFFFF;
          prop (i + 1) (s lsr 16)
        end
      in
      ignore (prop 16 !carry);
      let al = Uint256.limbs a in
      Uint256.compare r m < 0
      && Array.for_all (fun x -> x = 0) (Array.sub sum 16 16)
      && Array.for_all2 ( = ) (Array.sub sum 0 16) al)

let prop_modinv =
  QCheck.Test.make ~name:"u256 x * inv(x) = 1 mod n" ~count:100 arb_u256
    (fun x ->
      let n = Secp256k1.n in
      let x = snd (Uint256.div_mod x n) in
      QCheck.assume (not (Uint256.is_zero x));
      let xi = Uint256.inv_mod x n in
      Uint256.equal (Uint256.mul_mod x xi n) Uint256.one)

let test_pow_mod () =
  (* Fermat: a^(p-1) = 1 mod p for prime p *)
  let p = Secp256k1.p in
  let p_minus_1 = fst (Uint256.sub p Uint256.one) in
  let a = Uint256.of_hex "1234567890abcdef" in
  check u256 "fermat" Uint256.one (Uint256.pow_mod a p_minus_1 p);
  check u256 "pow 0" Uint256.one (Uint256.pow_mod a Uint256.zero p)

(* --- secp256k1 ----------------------------------------------------------- *)

let test_curve_generator () =
  (match Secp256k1.to_affine Secp256k1.generator with
  | Some (x, y) ->
      Alcotest.(check bool) "G on curve" true (Secp256k1.is_on_curve x y)
  | None -> Alcotest.fail "generator is infinity");
  Alcotest.(check bool) "n*G = infinity" true
    (Secp256k1.is_infinity (Secp256k1.scalar_mul Secp256k1.n Secp256k1.generator))

let test_curve_known_multiples () =
  (* known x-coordinates of k*G *)
  let expect k hex =
    match
      Secp256k1.to_affine
        (Secp256k1.scalar_mul (Uint256.of_int k) Secp256k1.generator)
    with
    | Some (x, _) -> check Alcotest.string (string_of_int k) hex (Uint256.to_hex x)
    | None -> Alcotest.fail "unexpected infinity"
  in
  expect 2 "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5";
  expect 3 "f9308a019258c31049344f85f89d5229b531c845836f99b08601f113bce036f9";
  expect 7 "5cbdf0646e5db4eaa398f365f2ea7a0e3d419b7e0330e39ce92bddedcac4f9bc"

let test_curve_group_laws () =
  let g = Secp256k1.generator in
  let two_g = Secp256k1.double g in
  let three_a = Secp256k1.add two_g g in
  let three_b = Secp256k1.scalar_mul (Uint256.of_int 3) g in
  Alcotest.(check bool) "2G+G = 3G" true (Secp256k1.equal three_a three_b);
  Alcotest.(check bool) "G + (-G) = inf" true
    (Secp256k1.is_infinity (Secp256k1.add g (Secp256k1.negate g)));
  Alcotest.(check bool) "add commutes" true
    (Secp256k1.equal (Secp256k1.add two_g three_a) (Secp256k1.add three_a two_g))

let prop_scalar_distributes =
  QCheck.Test.make ~name:"secp256k1 (a+b)G = aG + bG" ~count:20
    (QCheck.pair (QCheck.int_range 1 100000) (QCheck.int_range 1 100000))
    (fun (a, b) ->
      let g = Secp256k1.generator in
      let lhs = Secp256k1.scalar_mul (Uint256.of_int (a + b)) g in
      let rhs =
        Secp256k1.add
          (Secp256k1.scalar_mul (Uint256.of_int a) g)
          (Secp256k1.scalar_mul (Uint256.of_int b) g)
      in
      Secp256k1.equal lhs rhs)

let test_double_scalar_mul () =
  let g = Secp256k1.generator in
  let q = Secp256k1.scalar_mul (Uint256.of_int 777) g in
  let a = Uint256.of_int 123 and b = Uint256.of_int 456 in
  let expected =
    Secp256k1.add (Secp256k1.scalar_mul a g) (Secp256k1.scalar_mul b q)
  in
  Alcotest.(check bool) "shamir matches" true
    (Secp256k1.equal (Secp256k1.double_scalar_mul a g b q) expected)

(* --- ECDSA --------------------------------------------------------------- *)

let test_ecdsa_roundtrip () =
  let priv, pub = Ecdsa.generate ~seed:"alice" in
  let d = Hash.digest_string "message" in
  let s = Ecdsa.sign priv d in
  Alcotest.(check bool) "verifies" true (Ecdsa.verify pub d s);
  Alcotest.(check bool) "wrong message" false
    (Ecdsa.verify pub (Hash.digest_string "other") s);
  let _, pub2 = Ecdsa.generate ~seed:"bob" in
  Alcotest.(check bool) "wrong key" false (Ecdsa.verify pub2 d s)

let test_ecdsa_deterministic () =
  let priv, _ = Ecdsa.generate ~seed:"alice" in
  let d = Hash.digest_string "message" in
  let s1 = Ecdsa.sign priv d and s2 = Ecdsa.sign priv d in
  Alcotest.(check bool) "deterministic nonce" true
    (Uint256.equal s1.Ecdsa.r s2.Ecdsa.r && Uint256.equal s1.Ecdsa.s s2.Ecdsa.s)

let test_ecdsa_bitflip () =
  let priv, pub = Ecdsa.generate ~seed:"carol" in
  let d = Hash.digest_string "payload" in
  let s = Ecdsa.sign priv d in
  let b = Ecdsa.signature_to_bytes s in
  Bytes.set b 10 (Char.chr (Char.code (Bytes.get b 10) lxor 1));
  match Ecdsa.signature_of_bytes b with
  | Some s' -> Alcotest.(check bool) "flipped sig fails" false (Ecdsa.verify pub d s')
  | None -> ()

let test_ecdsa_encoding () =
  let _, pub = Ecdsa.generate ~seed:"dave" in
  let b = Ecdsa.public_key_to_bytes pub in
  (match Ecdsa.public_key_of_bytes b with
  | Some pub' ->
      Alcotest.(check bool) "pubkey roundtrip" true
        (Hash.equal (Ecdsa.public_key_id pub) (Ecdsa.public_key_id pub'))
  | None -> Alcotest.fail "failed to parse encoded public key");
  (* corrupt: not on curve *)
  Bytes.set b 5 (Char.chr (Char.code (Bytes.get b 5) lxor 0xFF));
  Alcotest.(check bool) "off-curve rejected" true
    (Ecdsa.public_key_of_bytes b = None)

let prop_ecdsa_roundtrip =
  QCheck.Test.make ~name:"ecdsa sign/verify roundtrips" ~count:10
    QCheck.small_string (fun seed ->
      let priv, pub = Ecdsa.generate ~seed in
      let d = Hash.digest_string ("msg:" ^ seed) in
      Ecdsa.verify pub d (Ecdsa.sign priv d))

(* --- Multisig ------------------------------------------------------------ *)

let test_multisig () =
  let digest = Hash.digest_string "purge request" in
  let keys = List.init 3 (fun i -> Ecdsa.generate ~seed:("m" ^ string_of_int i)) in
  let ms =
    List.fold_left
      (fun acc (priv, pub) -> Multisig.add acc ~signer:pub priv)
      (Multisig.empty digest) keys
  in
  Alcotest.(check int) "3 signatures" 3 (Multisig.cardinal ms);
  Alcotest.(check bool) "all verify" true (Multisig.verify_all ms);
  let required = List.map snd keys in
  Alcotest.(check bool) "covers required" true (Multisig.covers ms ~required);
  let _, extra = Ecdsa.generate ~seed:"extra" in
  Alcotest.(check bool) "missing signer detected" false
    (Multisig.covers ms ~required:(extra :: required));
  (* replacing a signature keeps cardinality *)
  let p0, k0 = List.hd keys in
  let ms' = Multisig.add ms ~signer:k0 p0 in
  Alcotest.(check int) "re-sign replaces" 3 (Multisig.cardinal ms')

let test_multisig_tampered () =
  let digest = Hash.digest_string "doc" in
  let priv, pub = Ecdsa.generate ~seed:"signer" in
  let wrong = Ecdsa.sign priv (Hash.digest_string "other doc") in
  let ms = Multisig.add_signature (Multisig.empty digest) ~signer:pub wrong in
  Alcotest.(check bool) "bad signature detected" false (Multisig.verify_all ms)

let qcheck = QCheck_alcotest.to_alcotest

let base_suite =
  [
    tc "sha256 vectors" `Quick test_sha256_vectors;
    tc "sha256 streaming" `Quick test_sha256_streaming;
    tc "sha3 vectors" `Quick test_sha3_vectors;
    tc "hmac vectors" `Quick test_hmac_vectors;
    tc "hash roundtrips" `Quick test_hash_roundtrip;
    tc "u256 basics" `Quick test_u256_basics;
    qcheck prop_add_sub_roundtrip;
    qcheck prop_mul_matches_divmod;
    qcheck prop_modinv;
    tc "pow_mod fermat" `Quick test_pow_mod;
    tc "curve generator" `Quick test_curve_generator;
    tc "curve known multiples" `Quick test_curve_known_multiples;
    tc "curve group laws" `Quick test_curve_group_laws;
    qcheck prop_scalar_distributes;
    tc "double scalar mul" `Quick test_double_scalar_mul;
    tc "ecdsa roundtrip" `Quick test_ecdsa_roundtrip;
    tc "ecdsa deterministic" `Quick test_ecdsa_deterministic;
    tc "ecdsa bitflip rejected" `Quick test_ecdsa_bitflip;
    tc "ecdsa key encoding" `Quick test_ecdsa_encoding;
    qcheck prop_ecdsa_roundtrip;
    tc "multisig cover" `Quick test_multisig;
    tc "multisig tamper" `Quick test_multisig_tampered;
  ]

(* --- additional edge cases ------------------------------------------------- *)

let test_u256_edges () =
  let max =
    Uint256.of_hex
      "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"
  in
  (* wrap-around *)
  let z, carry = Uint256.add max Uint256.one in
  Alcotest.(check bool) "max + 1 wraps" true (carry && Uint256.is_zero z);
  let m, borrow = Uint256.sub Uint256.zero Uint256.one in
  Alcotest.(check bool) "0 - 1 borrows to max" true (borrow && Uint256.equal m max);
  (* shifts at boundaries *)
  Alcotest.(check bool) "shift out" true
    (Uint256.is_zero (Uint256.shift_left Uint256.one 256));
  Alcotest.(check bool) "shift 255 round trip" true
    (Uint256.equal Uint256.one
       (Uint256.shift_right (Uint256.shift_left Uint256.one 255) 255));
  (* division edge cases *)
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Uint256.div_mod Uint256.one Uint256.zero));
  let q, r = Uint256.div_mod max max in
  Alcotest.(check bool) "x / x" true
    (Uint256.equal q Uint256.one && Uint256.is_zero r);
  (* hex validation *)
  Alcotest.check_raises "bad hex digit"
    (Invalid_argument "Uint256.of_hex: bad digit") (fun () ->
      ignore (Uint256.of_hex "xyz"));
  Alcotest.check_raises "hex too long"
    (Invalid_argument "Uint256.of_hex: bad length") (fun () ->
      ignore (Uint256.of_hex (String.make 65 'a')));
  (* bytes round trip *)
  let v = Uint256.of_hex "0102030405060708090a0b0c0d0e0f10" in
  Alcotest.(check bool) "bytes roundtrip" true
    (Uint256.equal v (Uint256.of_bytes_be (Uint256.to_bytes_be v)))

let test_curve_edges () =
  let g = Secp256k1.generator in
  (* scalar 0 and 1 *)
  Alcotest.(check bool) "0 * G = inf" true
    (Secp256k1.is_infinity (Secp256k1.scalar_mul Uint256.zero g));
  Alcotest.(check bool) "1 * G = G" true
    (Secp256k1.equal (Secp256k1.scalar_mul Uint256.one g) g);
  (* (n-1) * G = -G *)
  let n_minus_1 = fst (Uint256.sub Secp256k1.n Uint256.one) in
  Alcotest.(check bool) "(n-1)G = -G" true
    (Secp256k1.equal (Secp256k1.scalar_mul n_minus_1 g) (Secp256k1.negate g));
  (* infinity is absorbing *)
  Alcotest.(check bool) "inf + G = G" true
    (Secp256k1.equal (Secp256k1.add Secp256k1.infinity g) g);
  Alcotest.(check bool) "double inf = inf" true
    (Secp256k1.is_infinity (Secp256k1.double Secp256k1.infinity));
  (* adding a point to itself routes through double *)
  Alcotest.(check bool) "P + P = 2P" true
    (Secp256k1.equal (Secp256k1.add g g) (Secp256k1.double g));
  (* off-curve coordinates rejected *)
  Alcotest.(check bool) "off-curve" false
    (Secp256k1.is_on_curve Uint256.one Uint256.one);
  (* field helpers *)
  Alcotest.check_raises "inverse of zero"
    (Invalid_argument "Secp256k1.fe_inv: zero") (fun () ->
      ignore (Secp256k1.fe_inv Uint256.zero))

let test_ecdsa_degenerate_signatures () =
  let _, pub = Ecdsa.generate ~seed:"edge" in
  let d = Hash.digest_string "msg" in
  (* zero / out-of-range components are rejected outright *)
  List.iter
    (fun (r, s) ->
      Alcotest.(check bool) "degenerate rejected" false
        (Ecdsa.verify pub d { Ecdsa.r; s }))
    [
      (Uint256.zero, Uint256.one);
      (Uint256.one, Uint256.zero);
      (Secp256k1.n, Uint256.one);
      (Uint256.one, Secp256k1.n);
    ]

let edge_suite =
  [
    tc "u256 edges" `Quick test_u256_edges;
    tc "curve edges" `Quick test_curve_edges;
    tc "ecdsa degenerate signatures" `Quick test_ecdsa_degenerate_signatures;
  ]

let suite = base_suite @ edge_suite
