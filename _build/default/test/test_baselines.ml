(* Tests for the baseline systems: QLDB sim, Fabric sim, ProvenDB sim, the
   LedgerDB application layer and the Table I profiles. *)

open Ledger_crypto
open Ledger_storage
open Ledger_baselines

let tc = Alcotest.test_case

(* --- QLDB ------------------------------------------------------------------ *)

let test_qldb_notarization () =
  let clock = Clock.create () in
  let q = Qldb_sim.create ~clock () in
  Qldb_sim.insert q ~id:"doc1" (Bytes.of_string "contents");
  Alcotest.(check (option string)) "retrieve" (Some "contents")
    (Option.map Bytes.to_string (Qldb_sim.retrieve q ~id:"doc1"));
  Alcotest.(check bool) "verify" true (Qldb_sim.verify q ~id:"doc1");
  Alcotest.(check bool) "missing doc" false (Qldb_sim.verify q ~id:"nope");
  Alcotest.(check bool) "clock charged" true (Int64.compare (Clock.now clock) 0L > 0)

let test_qldb_lineage () =
  let clock = Clock.create () in
  let q = Qldb_sim.create ~clock () in
  for v = 0 to 4 do
    Qldb_sim.put_version q ~key:"asset" (Bytes.of_string ("v" ^ string_of_int v))
  done;
  Alcotest.(check int) "versions" 5 (Qldb_sim.version_count q ~key:"asset");
  Alcotest.(check bool) "lineage verifies" true (Qldb_sim.verify_lineage q ~key:"asset");
  Alcotest.(check bool) "unknown key" false (Qldb_sim.verify_lineage q ~key:"nope")

let test_qldb_verify_cost_scales () =
  (* per-version cost is the structural point of Table II *)
  let clock = Clock.create () in
  let q = Qldb_sim.create ~clock () in
  Qldb_sim.preload q (1 lsl 12);
  for v = 0 to 4 do
    Qldb_sim.put_version q ~key:"k5" (Bytes.of_string (string_of_int v))
  done;
  for v = 0 to 49 do
    Qldb_sim.put_version q ~key:"k50" (Bytes.of_string (string_of_int v))
  done;
  Qldb_sim.preload q (1 lsl 12);
  let t0 = Clock.now clock in
  ignore (Qldb_sim.verify_lineage q ~key:"k5");
  let t1 = Clock.now clock in
  ignore (Qldb_sim.verify_lineage q ~key:"k50");
  let t2 = Clock.now clock in
  let c5 = Int64.to_float (Int64.sub t1 t0) in
  let c50 = Int64.to_float (Int64.sub t2 t1) in
  Alcotest.(check bool) "50 versions cost ~10x of 5" true
    (c50 /. c5 > 6. && c50 /. c5 < 14.)

(* --- Fabric ----------------------------------------------------------------- *)

let test_fabric_submit_and_read () =
  let clock = Clock.create () in
  let f = Fabric_sim.create ~clock () in
  for i = 0 to 9 do
    Fabric_sim.submit f ~key:"item" (Bytes.of_string ("v" ^ string_of_int i))
  done;
  Alcotest.(check int) "committed" 10 (Fabric_sim.size f);
  Alcotest.(check (option string)) "latest state" (Some "v9")
    (Option.map Bytes.to_string (Fabric_sim.get_state f ~key:"item"));
  Alcotest.(check int) "history" 10 (Fabric_sim.version_count f ~key:"item");
  Alcotest.(check bool) "verify key" true (Fabric_sim.verify_key f ~key:"item");
  Alcotest.(check int) "verify history" 10 (Fabric_sim.verify_history f ~key:"item");
  Alcotest.(check int) "unknown history" 0 (Fabric_sim.verify_history f ~key:"nope")

let test_fabric_blocks () =
  let clock = Clock.create () in
  let f =
    Fabric_sim.create
      ~config:{ Fabric_sim.default_config with batch_size = 4 }
      ~clock ()
  in
  for i = 0 to 9 do
    Fabric_sim.submit f ~key:(string_of_int i) (Bytes.of_string "x")
  done;
  Fabric_sim.flush f;
  Alcotest.(check int) "blocks cut" 3 (Fabric_sim.block_count f)

let test_fabric_ordering_bounds_throughput () =
  (* the serial pipeline section costs >= ordering_per_tx_us *)
  let clock = Clock.create () in
  let f = Fabric_sim.create ~clock () in
  let t0 = Clock.now clock in
  for i = 0 to 99 do
    Fabric_sim.submit_pipelined f ~key:(string_of_int i) (Bytes.of_string "x")
  done;
  let dt = Int64.to_float (Int64.sub (Clock.now clock) t0) in
  let tps = 100. /. (dt /. 1_000_000.) in
  Alcotest.(check bool) "TPS near the 2K ordering ceiling" true
    (tps > 1000. && tps < 3000.)

let test_fabric_latency_dominated_by_consensus () =
  let clock = Clock.create () in
  let f = Fabric_sim.create ~clock () in
  Fabric_sim.submit f ~key:"k" (Bytes.of_string "v");
  let t0 = Clock.now clock in
  ignore (Fabric_sim.verify_key f ~key:"k");
  let ms = Int64.to_float (Int64.sub (Clock.now clock) t0) /. 1000. in
  Alcotest.(check bool) "verification takes ~1s (consensus)" true
    (ms > 900. && ms < 1500.)

(* --- ProvenDB ---------------------------------------------------------------- *)

let test_provendb () =
  let clock = Clock.create () in
  let p = Provendb_sim.create ~clock () in
  Provendb_sim.put p ~key:"doc" (Bytes.of_string "v1");
  Alcotest.(check (option string)) "get" (Some "v1")
    (Option.map Bytes.to_string (Provendb_sim.get p ~key:"doc"));
  Alcotest.(check bool) "forward integrity" true (Provendb_sim.verify p ~key:"doc");
  Alcotest.(check int) "digest queued, not anchored" 1 (Provendb_sim.pending_digests p);
  Alcotest.(check (option int64)) "no anchored time yet" None
    (Provendb_sim.anchored_time p ~key:"doc");
  (* the operator can delay anchoring arbitrarily — the Fig. 5(a) flaw *)
  Clock.advance_sec clock 3600.;
  ignore (Provendb_sim.anchor_now p);
  (match Provendb_sim.anchored_time p ~key:"doc" with
  | Some ts -> Alcotest.(check int64) "anchored an hour late" 3_600_000_000L ts
  | None -> Alcotest.fail "expected anchor");
  Alcotest.(check bool) "digest tracked" true (Provendb_sim.digest_of p ~key:"doc" <> None)

(* --- LedgerDB app -------------------------------------------------------------- *)

let test_ledgerdb_app_notarization () =
  let clock = Clock.create () in
  let app = Ledgerdb_app.create_local ~clock in
  Ledgerdb_app.insert app ~id:"doc1" (Bytes.of_string "blob");
  Alcotest.(check (option string)) "retrieve" (Some "blob")
    (Option.map Bytes.to_string (Ledgerdb_app.retrieve app ~id:"doc1"));
  Alcotest.(check bool) "verify" true (Ledgerdb_app.verify app ~id:"doc1");
  Alcotest.(check bool) "missing id" false (Ledgerdb_app.verify app ~id:"nope");
  Alcotest.(check int) "size" 1 (Ledgerdb_app.size app)

let test_ledgerdb_app_lineage () =
  let clock = Clock.create () in
  let app = Ledgerdb_app.create_local ~clock in
  for v = 0 to 7 do
    Ledgerdb_app.put_version app ~key:"asset" (Bytes.of_string (string_of_int v))
  done;
  Alcotest.(check int) "versions" 8 (Ledgerdb_app.version_count app ~key:"asset");
  Alcotest.(check bool) "lineage verify" true
    (Ledgerdb_app.verify_lineage app ~key:"asset");
  Alcotest.(check bool) "server-side verify" true
    (Ledgerdb_app.verify_lineage_server app ~key:"asset");
  Alcotest.(check bool) "unknown key server-side" false
    (Ledgerdb_app.verify_lineage_server app ~key:"nope")

let test_crossover_structure () =
  (* LedgerDB's lineage service cost is linear in entries; Fabric's is
     flat — the Fig. 10(c) crossover precondition *)
  let cost_ledgerdb entries =
    let clock = Clock.create () in
    let app = Ledgerdb_app.create_local ~clock in
    for _ = 1 to entries do
      Ledgerdb_app.put_version app ~key:"k" (Bytes.of_string "v")
    done;
    let t0 = Clock.now clock in
    ignore (Ledgerdb_app.verify_lineage_server app ~key:"k");
    Int64.to_float (Int64.sub (Clock.now clock) t0)
  in
  let c10 = cost_ledgerdb 10 and c100 = cost_ledgerdb 100 in
  Alcotest.(check bool) "ledgerdb cost ~linear" true
    (c100 /. c10 > 7. && c100 /. c10 < 13.);
  let cost_fabric entries =
    let clock = Clock.create () in
    let f = Fabric_sim.create ~clock () in
    for _ = 1 to entries do
      Fabric_sim.submit f ~key:"k" (Bytes.of_string "v")
    done;
    let t0 = Clock.now clock in
    ignore (Fabric_sim.verify_history_server f ~key:"k");
    Int64.to_float (Int64.sub (Clock.now clock) t0)
  in
  let f10 = cost_fabric 10 and f100 = cost_fabric 100 in
  Alcotest.(check bool) "fabric cost ~flat" true (f100 /. f10 < 1.5)

(* --- Table I ---------------------------------------------------------------------- *)

let test_system_profiles () =
  Alcotest.(check int) "six rows" 6 (List.length System_profile.all);
  let ledgerdb = List.hd System_profile.all in
  Alcotest.(check string) "first row" "LedgerDB" ledgerdb.System_profile.system;
  Alcotest.(check bool) "ledgerdb fully dasein" true
    (ledgerdb.System_profile.dasein_support = "what-when-who"
    && ledgerdb.System_profile.verifiable_mutation
    && ledgerdb.System_profile.verifiable_n_lineage);
  List.iter
    (fun p ->
      Alcotest.(check int) "row width matches header"
        (List.length System_profile.header)
        (List.length (System_profile.to_row p)))
    System_profile.all

let base_suite =
  [
    tc "qldb notarization" `Quick test_qldb_notarization;
    tc "qldb lineage" `Quick test_qldb_lineage;
    tc "qldb verify cost scales" `Quick test_qldb_verify_cost_scales;
    tc "fabric submit/read" `Quick test_fabric_submit_and_read;
    tc "fabric blocks" `Quick test_fabric_blocks;
    tc "fabric ordering ceiling" `Quick test_fabric_ordering_bounds_throughput;
    tc "fabric consensus latency" `Quick test_fabric_latency_dominated_by_consensus;
    tc "provendb one-way pegging" `Quick test_provendb;
    tc "ledgerdb app notarization" `Quick test_ledgerdb_app_notarization;
    tc "ledgerdb app lineage" `Quick test_ledgerdb_app_lineage;
    tc "fig10c crossover structure" `Quick test_crossover_structure;
    tc "system profiles" `Quick test_system_profiles;
  ]

(* --- SQL Ledger (forward integrity) -------------------------------------- *)

let test_sql_ledger_forward_integrity () =
  let clock = Clock.create () in
  let s = Sql_ledger_sim.create ~block_size:4 ~clock () in
  for i = 0 to 9 do
    Sql_ledger_sim.execute s ~key:("k" ^ string_of_int (i mod 3))
      (Bytes.of_string ("v" ^ string_of_int i))
  done;
  Alcotest.(check (option string)) "state" (Some "v9")
    (Option.map Bytes.to_string (Sql_ledger_sim.get s ~key:"k0"));
  Alcotest.(check int) "history" 10 (Sql_ledger_sim.history_length s);
  Alcotest.(check bool) "no digest yet" true
    (Sql_ledger_sim.verify s = `No_published_digest);
  ignore (Sql_ledger_sim.publish_digest s);
  Alcotest.(check bool) "clean verify" true (Sql_ledger_sim.verify s = `Ok);
  (* appends after publication remain verifiable (prefix check) *)
  Sql_ledger_sim.execute s ~key:"k1" (Bytes.of_string "v10");
  Alcotest.(check bool) "post-publication append ok" true
    (Sql_ledger_sim.verify s = `Ok);
  (* tampering *after* publication is detected *)
  Sql_ledger_sim.Unsafe.rewrite_history s ~index:2 ~key:"k2"
    (Bytes.of_string "EVIL");
  Alcotest.(check bool) "tamper detected" true
    (Sql_ledger_sim.verify s = `Tampered)

let test_sql_ledger_trust_gap () =
  (* the forward-integrity gap: tampering before any digest leaves the
     system is invisible — the LSP & Storage trust dependency of Table I *)
  let clock = Clock.create () in
  let s = Sql_ledger_sim.create ~clock () in
  for i = 0 to 4 do
    Sql_ledger_sim.execute s ~key:"k" (Bytes.of_string (string_of_int i))
  done;
  Sql_ledger_sim.Unsafe.rewrite_history s ~index:1 ~key:"k"
    (Bytes.of_string "rewritten-before-publication");
  ignore (Sql_ledger_sim.publish_digest s);
  Alcotest.(check bool) "pre-publication tamper invisible" true
    (Sql_ledger_sim.verify s = `Ok)

(* --- Factom ------------------------------------------------------------------ *)

let test_factom () =
  let clock = Clock.create () in
  let f = Factom_sim.create ~clock () in
  let d1 = Factom_sim.add_entry f ~chain:"deeds" (Bytes.of_string "deed #1") in
  let d2 = Factom_sim.add_entry f ~chain:"deeds" (Bytes.of_string "deed #2") in
  let d3 = Factom_sim.add_entry f ~chain:"art" (Bytes.of_string "artwork") in
  (* pending entries are not yet provable *)
  Alcotest.(check bool) "pending unprovable" true
    (Factom_sim.prove_entry f ~chain:"deeds" d1 = None);
  Clock.advance_sec clock 600.;
  Factom_sim.tick f;
  Alcotest.(check int) "directory block cut" 1 (Factom_sim.directory_blocks f);
  List.iter
    (fun (chain, d) ->
      let p = Option.get (Factom_sim.prove_entry f ~chain d) in
      Alcotest.(check bool) "entry verifies" true
        (Factom_sim.verify_entry f ~chain d p))
    [ ("deeds", d1); ("deeds", d2); ("art", d3) ];
  (* wrong chain is rejected *)
  Alcotest.(check bool) "wrong chain" true
    (Factom_sim.prove_entry f ~chain:"art" d1 = None);
  (* coarse when evidence *)
  (match Factom_sim.anchored_time f ~chain:"deeds" d1 with
  | Some ts -> Alcotest.(check int64) "anchored at seal time" 600_000_000L ts
  | None -> Alcotest.fail "expected anchor time");
  (* a forged digest does not verify with someone else's proof *)
  let p = Option.get (Factom_sim.prove_entry f ~chain:"deeds" d1) in
  Alcotest.(check bool) "forged digest rejected" false
    (Factom_sim.verify_entry f ~chain:"deeds" (Hash.digest_string "forged") p);
  Alcotest.(check bool) "storage accounted" true (Factom_sim.storage_bytes f > 0)

let test_factom_multi_blocks () =
  let clock = Clock.create () in
  let f = Factom_sim.create ~clock () in
  let digests =
    List.init 20 (fun i ->
        let d =
          Factom_sim.add_entry f
            ~chain:("c" ^ string_of_int (i mod 4))
            (Bytes.of_string (string_of_int i))
        in
        if (i + 1) mod 5 = 0 then begin
          Clock.advance_sec clock 600.;
          ignore (Factom_sim.seal_directory_block f)
        end;
        (("c" ^ string_of_int (i mod 4)), d))
  in
  Alcotest.(check int) "four directory blocks" 4 (Factom_sim.directory_blocks f);
  List.iter
    (fun (chain, d) ->
      let p = Option.get (Factom_sim.prove_entry f ~chain d) in
      Alcotest.(check bool) "multi-block entry verifies" true
        (Factom_sim.verify_entry f ~chain d p))
    digests

let extended_suite =
  [
    tc "sql ledger forward integrity" `Quick test_sql_ledger_forward_integrity;
    tc "sql ledger trust gap" `Quick test_sql_ledger_trust_gap;
    tc "factom notarization" `Quick test_factom;
    tc "factom multi blocks" `Quick test_factom_multi_blocks;
  ]



let test_fabric_mvcc_conflicts () =
  (* two clients endorse against the same key version; the second to
     commit is aborted by validation — Fabric's execute-order-validate
     hazard, which centralized LedgerDB does not have *)
  let clock = Clock.create () in
  let f = Fabric_sim.create ~clock () in
  Fabric_sim.submit f ~key:"asset" (Bytes.of_string "v0");
  let v_a = Fabric_sim.endorse f ~key:"asset" in
  let v_b = Fabric_sim.endorse f ~key:"asset" in
  Alcotest.(check int) "both read the same version" v_a v_b;
  Fabric_sim.submit_endorsed f ~key:"asset" ~read_version:v_a
    (Bytes.of_string "client A");
  Fabric_sim.submit_endorsed f ~key:"asset" ~read_version:v_b
    (Bytes.of_string "client B");
  Alcotest.(check int) "one aborted" 1 (Fabric_sim.aborted f);
  Alcotest.(check (option string)) "first writer wins" (Some "client A")
    (Option.map Bytes.to_string (Fabric_sim.get_state f ~key:"asset"));
  Alcotest.(check int) "history has 2 committed versions" 2
    (Fabric_sim.version_count f ~key:"asset");
  (* sequential submits never conflict *)
  for i = 0 to 4 do
    Fabric_sim.submit f ~key:"asset" (Bytes.of_string (string_of_int i))
  done;
  Alcotest.(check int) "still one abort" 1 (Fabric_sim.aborted f)

let mvcc_suite = [ tc "fabric MVCC conflicts" `Quick test_fabric_mvcc_conflicts ]



let test_fabric_spv () =
  (* Fabric's rigorous what: SPV proofs over its block chain (Table I) *)
  let clock = Clock.create () in
  let f = Fabric_sim.create ~clock () in
  for i = 0 to 9 do
    Fabric_sim.submit f ~key:("k" ^ string_of_int i)
      (Bytes.of_string ("v" ^ string_of_int i))
  done;
  for i = 0 to 9 do
    let p = Option.get (Fabric_sim.prove_tx f ~tx_index:i) in
    Alcotest.(check bool)
      (Printf.sprintf "tx %d verifies" i)
      true
      (Fabric_sim.verify_tx f ~key:("k" ^ string_of_int i)
         ~data:(Bytes.of_string ("v" ^ string_of_int i))
         p);
    Alcotest.(check bool) "wrong data rejected" false
      (Fabric_sim.verify_tx f ~key:("k" ^ string_of_int i)
         ~data:(Bytes.of_string "forged") p)
  done;
  Alcotest.(check bool) "out of range" true
    (Fabric_sim.prove_tx f ~tx_index:99 = None)

let spv_suite = [ tc "fabric SPV tx proofs" `Quick test_fabric_spv ]

let suite = base_suite @ extended_suite @ mvcc_suite @ spv_suite
