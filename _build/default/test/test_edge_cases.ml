(* Boundary-condition tests across the stack: minimal fractal heights,
   single-journal blocks, empty payloads, and receipt finalization. *)

open Ledger_crypto
open Ledger_storage
open Ledger_core
open Ledger_merkle

let tc = Alcotest.test_case
let leaf i = Hash.digest_string ("e" ^ string_of_int i)

let test_fam_delta_one () =
  (* capacity-2 epochs: every epoch after the first holds one journal,
     maximally exercising Rule 1 chaining *)
  let f = Fam.create ~delta:1 in
  for i = 0 to 19 do
    ignore (Fam.append f (leaf i))
  done;
  Alcotest.(check (pair int int)) "jsn 0" (0, 0) (Fam.epoch_of_jsn f 0);
  Alcotest.(check (pair int int)) "jsn 1" (0, 1) (Fam.epoch_of_jsn f 1);
  Alcotest.(check (pair int int)) "jsn 2" (1, 1) (Fam.epoch_of_jsn f 2);
  Alcotest.(check (pair int int)) "jsn 3" (2, 1) (Fam.epoch_of_jsn f 3);
  let c = Fam.commitment f in
  for i = 0 to 19 do
    Alcotest.(check bool)
      (Printf.sprintf "jsn %d provable" i)
      true
      (Fam.verify ~commitment:c ~leaf:(leaf i) (Fam.prove f i))
  done;
  (* extension proofs survive the degenerate shape too *)
  let old_peaks = Fam.peaks f in
  ignore (Fam.append f (leaf 20));
  let proof = Fam.prove_extension f ~old_size:20 in
  Alcotest.(check bool) "delta-1 extension" true
    (Fam.verify_extension ~delta:1 ~old_size:20 ~old_peaks ~new_size:21
       ~new_commitment:(Fam.commitment f) proof)

let test_shrubs_height_one () =
  let s = Shrubs.create ~height:1 () in
  Alcotest.(check (option int)) "capacity 2" (Some 2) (Shrubs.capacity s);
  ignore (Shrubs.append s (leaf 0));
  ignore (Shrubs.append s (leaf 1));
  Alcotest.(check bool) "full" true (Shrubs.is_full s);
  Alcotest.(check bool) "root = combine" true
    (Hash.equal (Shrubs.root s) (Hash.combine (leaf 0) (leaf 1)))

let test_single_journal_blocks () =
  let clock = Clock.create () in
  let config =
    { Ledger.default_config with name = "edge"; block_size = 1; fam_delta = 2;
      crypto = Crypto_profile.default_simulated }
  in
  let ledger = Ledger.create ~config ~clock () in
  let m, k = Ledger.new_member ledger ~name:"m" ~role:Roles.Regular_user in
  let receipts =
    List.init 5 (fun i ->
        Clock.advance_ms clock 5.;
        Ledger.append ledger ~member:m ~priv:k
          (Bytes.of_string (string_of_int i)))
  in
  (* every journal seals its own block, so every receipt is already final *)
  Alcotest.(check int) "five blocks" 5 (Ledger.block_count ledger);
  List.iter
    (fun (r : Receipt.t) ->
      Alcotest.(check bool) "immediately final" true (Receipt.is_final r))
    receipts;
  Alcotest.(check bool) "audit" true (Audit.run ledger).Audit.ok

let test_receipt_finalization () =
  let clock = Clock.create () in
  let config =
    { Ledger.default_config with name = "edge2"; block_size = 4; fam_delta = 2;
      crypto = Crypto_profile.default_simulated }
  in
  let ledger = Ledger.create ~config ~clock () in
  let m, k = Ledger.new_member ledger ~name:"m" ~role:Roles.Regular_user in
  let r = Ledger.append ledger ~member:m ~priv:k (Bytes.of_string "x") in
  Alcotest.(check bool) "provisional receipt" false (Receipt.is_final r);
  Alcotest.(check bool) "provisional verifies" true (Ledger.verify_receipt ledger r);
  Ledger.seal_block ledger;
  let final = Ledger.get_receipt ledger r.Receipt.jsn in
  Alcotest.(check bool) "final after seal" true (Receipt.is_final final);
  Alcotest.(check bool) "same tx hash" true
    (Hash.equal r.Receipt.tx_hash final.Receipt.tx_hash)

let test_empty_payload_and_no_clues () =
  let clock = Clock.create () in
  let config =
    { Ledger.default_config with name = "edge3"; fam_delta = 2;
      crypto = Crypto_profile.default_simulated }
  in
  let ledger = Ledger.create ~config ~clock () in
  let m, k = Ledger.new_member ledger ~name:"m" ~role:Roles.Regular_user in
  let r = Ledger.append ledger ~member:m ~priv:k Bytes.empty in
  Alcotest.(check (option string)) "empty payload stored" (Some "")
    (Option.map Bytes.to_string (Ledger.payload ledger r.Receipt.jsn));
  Alcotest.(check int) "no state transitions" 0 (Ledger.world_state_size ledger);
  let p = Ledger.get_proof ledger r.Receipt.jsn in
  Alcotest.(check bool) "provable" true
    (Ledger.verify_existence ledger ~jsn:r.Receipt.jsn ~payload_digest:None p);
  Alcotest.(check bool) "audit" true (Audit.run ledger).Audit.ok

let test_single_journal_ledger_audit () =
  let clock = Clock.create () in
  let config =
    { Ledger.default_config with name = "edge4"; fam_delta = 2;
      crypto = Crypto_profile.default_simulated }
  in
  let ledger = Ledger.create ~config ~clock () in
  let m, k = Ledger.new_member ledger ~name:"m" ~role:Roles.Regular_user in
  ignore (Ledger.append ledger ~member:m ~priv:k (Bytes.of_string "only"));
  let report = Audit.run ledger in
  Alcotest.(check bool) "one-journal audit" true report.Audit.ok;
  Alcotest.(check int) "scope" 1 report.Audit.journals_checked;
  (* and the empty ledger audits vacuously *)
  let empty = Ledger.create ~config:{ config with name = "edge5" } ~clock () in
  let report = Audit.run empty in
  Alcotest.(check bool) "empty audit" true report.Audit.ok;
  Alcotest.(check int) "empty scope" 0 report.Audit.journals_checked

let suite =
  [
    tc "fam delta=1" `Quick test_fam_delta_one;
    tc "shrubs height=1" `Quick test_shrubs_height_one;
    tc "single-journal blocks" `Quick test_single_journal_blocks;
    tc "receipt finalization" `Quick test_receipt_finalization;
    tc "empty payload, no clues" `Quick test_empty_payload_and_no_clues;
    tc "one-journal and empty audits" `Quick test_single_journal_ledger_audit;
  ]
