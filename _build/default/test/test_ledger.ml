(* Integration tests for the LedgerDB kernel: append/receipts, existence
   and clue verification, blocks, time anchoring, purge and occult. *)

open Ledger_crypto
open Ledger_storage
open Ledger_core
open Ledger_timenotary

let tc = Alcotest.test_case

type env = {
  clock : Clock.t;
  ledger : Ledger.t;
  alice : Roles.member;
  alice_key : Ecdsa.private_key;
  bob : Roles.member;
  bob_key : Ecdsa.private_key;
  dba : Roles.member;
  dba_key : Ecdsa.private_key;
  regulator : Roles.member;
  regulator_key : Ecdsa.private_key;
}

let make_env ?(crypto = Crypto_profile.default_simulated) ?(block_size = 8)
    ?(fam_delta = 4) ?(with_notary = true) () =
  let clock = Clock.create () in
  let tsa =
    if with_notary then
      Some (Tsa.pool [ Tsa.create ~endorse_rtt_ms:1. ~clock "nts" ])
    else None
  in
  let t_ledger =
    match tsa with
    | Some pool -> Some (T_ledger.create ~clock ~tsa:pool ())
    | None -> None
  in
  let config =
    { Ledger.default_config with name = "test"; block_size; fam_delta; crypto }
  in
  let ledger = Ledger.create ~config ?t_ledger ?tsa ~clock () in
  let alice, alice_key = Ledger.new_member ledger ~name:"alice" ~role:Roles.Regular_user in
  let bob, bob_key = Ledger.new_member ledger ~name:"bob" ~role:Roles.Regular_user in
  let dba, dba_key = Ledger.new_member ledger ~name:"dba" ~role:Roles.Dba in
  let regulator, regulator_key =
    Ledger.new_member ledger ~name:"regulator" ~role:Roles.Regulator
  in
  { clock; ledger; alice; alice_key; bob; bob_key; dba; dba_key; regulator;
    regulator_key }

let append env ?(clues = []) who text =
  let member, priv =
    match who with
    | `Alice -> (env.alice, env.alice_key)
    | `Bob -> (env.bob, env.bob_key)
  in
  Clock.advance_ms env.clock 10.;
  Ledger.append env.ledger ~member ~priv ~clues (Bytes.of_string text)

let fill env n =
  List.init n (fun i ->
      append env
        ~clues:[ "asset-" ^ string_of_int (i mod 3) ]
        (if i mod 2 = 0 then `Alice else `Bob)
        (Printf.sprintf "payload %d" i))

(* --- append / receipts ------------------------------------------------------ *)

let test_append_and_receipts () =
  let env = make_env () in
  let receipts = fill env 20 in
  Alcotest.(check int) "size" 20 (Ledger.size env.ledger);
  let r0 = List.hd receipts in
  Alcotest.(check bool) "receipt verifies" true
    (Ledger.verify_receipt env.ledger r0);
  (* block 0 sealed after 8 journals: final receipt available *)
  let final = Ledger.get_receipt env.ledger 0 in
  Alcotest.(check bool) "final receipt has block hash" true (Receipt.is_final final);
  Alcotest.(check bool) "final receipt verifies" true
    (Ledger.verify_receipt env.ledger final);
  (* journal metadata *)
  let j = Ledger.journal env.ledger 5 in
  Alcotest.(check int) "jsn" 5 j.Journal.jsn;
  Alcotest.(check (list string)) "clues" [ "asset-2" ] j.Journal.clues;
  Alcotest.(check (option string)) "payload" (Some "payload 5")
    (Option.map Bytes.to_string (Ledger.payload env.ledger 5))

let test_append_rejects_unknown_member () =
  let env = make_env () in
  let stranger_priv, stranger_pub = Ecdsa.generate ~seed:"stranger" in
  let stranger =
    { Roles.name = "stranger"; role = Roles.Regular_user; pub = stranger_pub;
      id = Ecdsa.public_key_id stranger_pub }
  in
  Alcotest.check_raises "unknown member rejected"
    (Invalid_argument "Ledger.append: unknown member") (fun () ->
      ignore
        (Ledger.append env.ledger ~member:stranger ~priv:stranger_priv
           (Bytes.of_string "x")))

let test_multisigned_append () =
  let env = make_env () in
  let r =
    Ledger.append env.ledger ~member:env.alice ~priv:env.alice_key
      ~cosigners:[ (env.bob, env.bob_key); (env.dba, env.dba_key) ]
      (Bytes.of_string "contract")
  in
  let j = Ledger.journal env.ledger r.Receipt.jsn in
  Alcotest.(check int) "two cosigners" 2 (List.length j.Journal.cosigners)

(* --- blocks ------------------------------------------------------------------ *)

let test_block_chain () =
  let env = make_env ~block_size:4 () in
  ignore (fill env 14);
  Ledger.seal_block env.ledger;
  Alcotest.(check int) "blocks" 4 (Ledger.block_count env.ledger);
  let blocks = Ledger.blocks env.ledger in
  let rec chained = function
    | a :: (b :: _ as rest) -> Block.links_to a b && chained rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "hash chain holds" true (chained blocks);
  let b1 = Ledger.block env.ledger 1 in
  Alcotest.(check int) "block 1 start" 4 b1.Block.start_jsn;
  Alcotest.(check int) "block 1 count" 4 b1.Block.count;
  (* last partial block has 2 journals *)
  let b3 = Ledger.block env.ledger 3 in
  Alcotest.(check int) "partial block" 2 b3.Block.count

(* --- existence verification -------------------------------------------------- *)

let test_existence_verification () =
  let env = make_env () in
  ignore (fill env 30);
  for jsn = 0 to 29 do
    let p = Ledger.get_proof env.ledger jsn in
    Alcotest.(check bool)
      (Printf.sprintf "jsn %d" jsn)
      true
      (Ledger.verify_existence env.ledger ~jsn ~payload_digest:None p)
  done;
  (* with payload binding *)
  let digest = Hash.digest_bytes (Bytes.of_string "payload 7") in
  let p = Ledger.get_proof env.ledger 7 in
  Alcotest.(check bool) "payload digest binds" true
    (Ledger.verify_existence env.ledger ~jsn:7 ~payload_digest:(Some digest) p);
  Alcotest.(check bool) "wrong payload digest fails" false
    (Ledger.verify_existence env.ledger ~jsn:7
       ~payload_digest:(Some (Hash.digest_string "forged"))
       p)

let test_anchored_existence () =
  let env = make_env () in
  ignore (fill env 40);
  let anchor = Ledger.make_anchor env.ledger in
  ignore (fill env 20);
  for jsn = 0 to 59 do
    let p = Ledger.get_proof_anchored env.ledger anchor jsn in
    Alcotest.(check bool)
      (Printf.sprintf "anchored jsn %d" jsn)
      true
      (Ledger.verify_anchored env.ledger anchor
         ~leaf:(Ledger.tx_hash_of env.ledger jsn)
         p)
  done

(* --- clues -------------------------------------------------------------------- *)

let test_clue_verification () =
  let env = make_env () in
  ignore (fill env 30);
  Alcotest.(check int) "clue entries" 10 (Ledger.clue_entries env.ledger "asset-1");
  Alcotest.(check (list int)) "clue jsns" [ 1; 4; 7 ]
    (List.filteri (fun i _ -> i < 3) (Ledger.clue_jsns env.ledger "asset-1"));
  let proof = Option.get (Ledger.prove_clue env.ledger ~clue:"asset-1" ()) in
  Alcotest.(check bool) "client clue verify" true
    (Ledger.verify_clue_client env.ledger proof);
  Alcotest.(check bool) "server clue verify" true
    (Ledger.verify_clue_server env.ledger ~clue:"asset-1");
  Alcotest.(check bool) "unknown clue" true
    (Ledger.prove_clue env.ledger ~clue:"nope" () = None);
  (* version-range proof *)
  let range = Option.get (Ledger.prove_clue env.ledger ~clue:"asset-1" ~first:2 ~last:5 ()) in
  Alcotest.(check bool) "range clue verify" true
    (Ledger.verify_clue_client env.ledger range)

(* --- time anchoring ------------------------------------------------------------ *)

let test_time_anchoring () =
  let env = make_env () in
  ignore (fill env 5);
  (match Ledger.anchor_via_t_ledger env.ledger with
  | Ok j -> (
      match j.Journal.kind with
      | Journal.Time (Journal.Via_t_ledger { digest; _ }) ->
          Alcotest.(check bool) "anchored digest is pre-anchor commitment" true
            (Hash.equal digest (Hash.of_bytes (Hash.to_bytes digest)))
      | _ -> Alcotest.fail "expected T-Ledger time journal")
  | Error _ -> Alcotest.fail "T-Ledger submission rejected");
  let j = Ledger.anchor_via_tsa env.ledger in
  (match j.Journal.kind with
  | Journal.Time (Journal.Direct_tsa token) ->
      let pool = Option.get (Ledger.tsa_pool env.ledger) in
      Alcotest.(check bool) "TSA token verifies" true (Tsa.pool_verify pool token)
  | _ -> Alcotest.fail "expected direct TSA journal");
  Alcotest.(check int) "two time journals" 2
    (List.length (Ledger.time_journals env.ledger))

let test_anchor_without_notary () =
  let env = make_env ~with_notary:false () in
  Alcotest.check_raises "no T-Ledger"
    (Invalid_argument "Ledger.anchor_via_t_ledger: no T-Ledger configured")
    (fun () -> ignore (Ledger.anchor_via_t_ledger env.ledger));
  Alcotest.check_raises "no TSA"
    (Invalid_argument "Ledger.anchor_via_tsa: no TSA pool configured")
    (fun () -> ignore (Ledger.anchor_via_tsa env.ledger))

(* --- occult ---------------------------------------------------------------------- *)

let occult_signers env = [ (env.dba, env.dba_key); (env.regulator, env.regulator_key) ]

let test_occult_sync () =
  let env = make_env () in
  ignore (fill env 12);
  let tx_before = Ledger.tx_hash_of env.ledger 3 in
  (match
     Ledger.occult env.ledger ~target_jsn:3 ~mode:Ledger.Sync
       ~signers:(occult_signers env) ~reason:"pii"
   with
  | Ok j -> (
      match j.Journal.kind with
      | Journal.Occult { target_jsn; retained_hash } ->
          Alcotest.(check int) "target" 3 target_jsn;
          Alcotest.(check bool) "retained hash = tx hash" true
            (Hash.equal retained_hash tx_before)
      | _ -> Alcotest.fail "expected occult journal")
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "occulted" true (Ledger.is_occulted env.ledger 3);
  Alcotest.(check bool) "payload gone" true (Ledger.payload env.ledger 3 = None);
  (* Protocol 2: ledger remains verifiable — existence proof still works *)
  let p = Ledger.get_proof env.ledger 3 in
  Alcotest.(check bool) "retained hash still provable" true
    (Ledger.verify_existence env.ledger ~jsn:3 ~payload_digest:None p);
  (* other journals untouched *)
  Alcotest.(check bool) "others intact" true (Ledger.payload env.ledger 4 <> None)

let test_occult_async_and_reorganize () =
  let env = make_env () in
  ignore (fill env 10);
  (match
     Ledger.occult env.ledger ~target_jsn:2 ~mode:Ledger.Async
       ~signers:(occult_signers env) ~reason:"gdpr"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "marked deleted" true (Ledger.is_occulted env.ledger 2);
  (* async: payload physically present until reorganization *)
  Alcotest.(check bool) "payload still on disk" true
    (Ledger.payload env.ledger 2 <> None);
  Alcotest.(check int) "reorganize erases one" 1 (Ledger.reorganize env.ledger);
  Alcotest.(check bool) "payload erased" true (Ledger.payload env.ledger 2 = None);
  Alcotest.(check int) "reorganize idempotent" 0 (Ledger.reorganize env.ledger)

let test_occult_prerequisites () =
  let env = make_env () in
  ignore (fill env 5);
  (match
     Ledger.occult env.ledger ~target_jsn:1 ~mode:Ledger.Sync
       ~signers:[ (env.dba, env.dba_key) ] ~reason:"x"
   with
  | Ok _ -> Alcotest.fail "occult without regulator accepted"
  | Error _ -> ());
  (match
     Ledger.occult env.ledger ~target_jsn:1 ~mode:Ledger.Sync
       ~signers:[ (env.regulator, env.regulator_key) ] ~reason:"x"
   with
  | Ok _ -> Alcotest.fail "occult without DBA accepted"
  | Error _ -> ());
  (* double occult rejected *)
  (match
     Ledger.occult env.ledger ~target_jsn:1 ~mode:Ledger.Sync
       ~signers:(occult_signers env) ~reason:"x"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  match
    Ledger.occult env.ledger ~target_jsn:1 ~mode:Ledger.Sync
      ~signers:(occult_signers env) ~reason:"x"
  with
  | Ok _ -> Alcotest.fail "double occult accepted"
  | Error _ -> ()

(* --- purge ------------------------------------------------------------------------ *)

let purge_signers env upto =
  let affected = Ledger.affected_members env.ledger ~upto_jsn:upto in
  (env.dba, env.dba_key)
  :: List.map
       (fun (m : Roles.member) ->
         if m.Roles.name = "alice" then (m, env.alice_key)
         else if m.Roles.name = "bob" then (m, env.bob_key)
         else Alcotest.fail ("unexpected affected member " ^ m.Roles.name))
       affected

let test_purge () =
  let env = make_env () in
  ignore (fill env 20);
  let request = { Ledger.upto_jsn = 10; survivors = [ 4 ]; erase_fam_nodes = true } in
  (match Ledger.purge env.ledger ~request ~signers:(purge_signers env 10) with
  | Ok pj -> (
      match pj.Journal.kind with
      | Journal.Purge { purge_upto; pseudo_genesis_jsn; survivors } ->
          Alcotest.(check int) "upto" 10 purge_upto;
          Alcotest.(check (list int)) "survivors" [ 4 ] survivors;
          (* double link: pseudo genesis immediately precedes purge journal *)
          Alcotest.(check int) "double link" (pj.Journal.jsn - 1) pseudo_genesis_jsn;
          let pg = Option.get (Ledger.pseudo_genesis env.ledger) in
          (match pg.Journal.kind with
          | Journal.Pseudo_genesis snapshot ->
              Alcotest.(check int) "back link" pj.Journal.jsn
                snapshot.Journal.replaced_purge_jsn
          | _ -> Alcotest.fail "expected pseudo genesis")
      | _ -> Alcotest.fail "expected purge journal")
  | Error e -> Alcotest.fail e);
  (* purged payloads gone, survivor retrievable *)
  Alcotest.(check bool) "purged payload gone" true (Ledger.payload env.ledger 3 = None);
  Alcotest.(check (option string)) "survivor kept" (Some "payload 4")
    (Option.map Bytes.to_string (Ledger.read_survivor env.ledger 4));
  Alcotest.(check (list int)) "survival stream" [ 4 ] (Ledger.survival_jsns env.ledger);
  (* journals after the purge point still verifiable *)
  let p = Ledger.get_proof env.ledger 15 in
  Alcotest.(check bool) "post-purge existence" true
    (Ledger.verify_existence env.ledger ~jsn:15 ~payload_digest:None p)

let test_purge_requires_all_members () =
  let env = make_env () in
  ignore (fill env 10);
  let request = { Ledger.upto_jsn = 10; survivors = []; erase_fam_nodes = false } in
  (* missing bob's signature *)
  match
    Ledger.purge env.ledger ~request
      ~signers:[ (env.dba, env.dba_key); (env.alice, env.alice_key) ]
  with
  | Ok _ -> Alcotest.fail "purge without all affected members accepted"
  | Error msg ->
      let contains hay needle =
        let n = String.length needle and h = String.length hay in
        let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "names the missing member" true (contains msg "bob")

let test_purge_bad_range () =
  let env = make_env () in
  ignore (fill env 3);
  let request = { Ledger.upto_jsn = 99; survivors = []; erase_fam_nodes = false } in
  match Ledger.purge env.ledger ~request ~signers:(purge_signers env 3) with
  | Ok _ -> Alcotest.fail "out-of-range purge accepted"
  | Error _ -> ()

(* --- real-crypto end-to-end -------------------------------------------------------- *)

let test_real_crypto_roundtrip () =
  let env = make_env ~crypto:Crypto_profile.Real () in
  let r = append env ~clues:[ "real" ] `Alice "signed for real" in
  Alcotest.(check bool) "receipt verifies with real ECDSA" true
    (Receipt.verify ~lsp_pub:(Ledger.lsp_public_key env.ledger) r);
  let j = Ledger.journal env.ledger r.Receipt.jsn in
  Alcotest.(check bool) "client signature real" true
    (Ecdsa.verify env.alice.Roles.pub j.Journal.request_hash
       (Option.get j.Journal.client_sig))

let base_suite =
  [
    tc "append and receipts" `Quick test_append_and_receipts;
    tc "unknown member rejected" `Quick test_append_rejects_unknown_member;
    tc "multi-signed append" `Quick test_multisigned_append;
    tc "block chain" `Quick test_block_chain;
    tc "existence verification" `Quick test_existence_verification;
    tc "anchored existence" `Quick test_anchored_existence;
    tc "clue verification" `Quick test_clue_verification;
    tc "time anchoring" `Quick test_time_anchoring;
    tc "anchoring without notary" `Quick test_anchor_without_notary;
    tc "occult sync" `Quick test_occult_sync;
    tc "occult async + reorganize" `Quick test_occult_async_and_reorganize;
    tc "occult prerequisites" `Quick test_occult_prerequisites;
    tc "purge" `Quick test_purge;
    tc "purge requires members" `Quick test_purge_requires_all_members;
    tc "purge bad range" `Quick test_purge_bad_range;
    tc "real crypto roundtrip" `Slow test_real_crypto_roundtrip;
  ]

(* --- world-state --------------------------------------------------------------- *)

let test_world_state () =
  let env = make_env () in
  Alcotest.(check bool) "empty world state" true
    (Ledger.world_state_root env.ledger = None);
  ignore (fill env 12);
  Alcotest.(check int) "one state leaf per clue update" 12
    (Ledger.world_state_size env.ledger);
  Alcotest.(check bool) "root exists" true
    (Ledger.world_state_root env.ledger <> None);
  (* verify every state transition of a clue *)
  let jsns = Ledger.clue_jsns env.ledger "asset-1" in
  List.iteri
    (fun version jsn ->
      match Ledger.prove_state_update env.ledger ~clue:"asset-1" ~version with
      | None -> Alcotest.fail "missing state proof"
      | Some (proof_jsn, path) ->
          Alcotest.(check int) "proof names the journal" jsn proof_jsn;
          Alcotest.(check bool) "state update verifies" true
            (Ledger.verify_state_update env.ledger ~clue:"asset-1"
               ~tx:(Ledger.tx_hash_of env.ledger jsn) path))
    jsns;
  (* wrong tx is rejected; out-of-range version is None *)
  let _, path = Option.get (Ledger.prove_state_update env.ledger ~clue:"asset-1" ~version:0) in
  Alcotest.(check bool) "wrong tx rejected" false
    (Ledger.verify_state_update env.ledger ~clue:"asset-1"
       ~tx:(Hash.digest_string "forged") path);
  Alcotest.(check bool) "bad version" true
    (Ledger.prove_state_update env.ledger ~clue:"asset-1" ~version:99 = None);
  Alcotest.(check bool) "unknown clue" true
    (Ledger.prove_state_update env.ledger ~clue:"nope" ~version:0 = None);
  (* the latest block commits the world-state root *)
  Ledger.seal_block env.ledger;
  let b = Ledger.block env.ledger (Ledger.block_count env.ledger - 1) in
  Alcotest.(check bool) "block commits world state" true
    (Hash.equal b.Block.world_state_root
       (Option.get (Ledger.world_state_root env.ledger)))

let world_state_suite = [ tc "world state" `Quick test_world_state ]



let test_compact_storage () =
  let env = make_env () in
  ignore (fill env 12);
  (match
     Ledger.occult env.ledger ~target_jsn:3 ~mode:Ledger.Sync
       ~signers:[ (env.dba, env.dba_key); (env.regulator, env.regulator_key) ]
       ~reason:"pii"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let reclaimed = Ledger.compact_storage env.ledger in
  Alcotest.(check int) "one slot reclaimed" 1 reclaimed;
  (* all live payloads still readable after remapping *)
  for jsn = 0 to Ledger.size env.ledger - 1 do
    match (Ledger.journal env.ledger jsn).Journal.kind with
    | Journal.Normal when jsn <> 3 && jsn < 12 ->
        Alcotest.(check (option string))
          (Printf.sprintf "payload %d survives compaction" jsn)
          (Some (Printf.sprintf "payload %d" jsn))
          (Option.map Bytes.to_string (Ledger.payload env.ledger jsn))
    | _ -> ()
  done;
  Alcotest.(check bool) "occulted stays erased" true
    (Ledger.payload env.ledger 3 = None);
  (* audit still clean *)
  Alcotest.(check bool) "audit after compaction" true (Audit.run env.ledger).Audit.ok

let compaction_suite = [ tc "compact storage" `Quick test_compact_storage ]



let test_multi_clue_journal () =
  (* one journal can carry several clues: it appears in each clue's
     lineage and contributes one world-state transition per clue *)
  let env = make_env () in
  let r =
    Ledger.append env.ledger ~member:env.alice ~priv:env.alice_key
      ~clues:[ "shipment"; "invoice"; "customs" ]
      (Bytes.of_string "multi-clue record")
  in
  List.iter
    (fun clue ->
      Alcotest.(check (list int)) (clue ^ " lineage") [ r.Receipt.jsn ]
        (Ledger.clue_jsns env.ledger clue);
      Alcotest.(check bool) (clue ^ " verifies") true
        (Ledger.verify_clue_server env.ledger ~clue))
    [ "shipment"; "invoice"; "customs" ];
  Alcotest.(check int) "three state transitions" 3
    (Ledger.world_state_size env.ledger);
  (* client-side verification works per clue *)
  let proof = Option.get (Ledger.prove_clue env.ledger ~clue:"invoice" ()) in
  Alcotest.(check bool) "client verify on shared journal" true
    (Ledger.verify_clue_client env.ledger proof);
  (* jsn range lookup through the skip list *)
  Alcotest.(check (list int)) "range lookup" [ r.Receipt.jsn ]
    (Ledger.clue_jsns_in_range env.ledger "customs" ~lo:0 ~hi:10);
  Alcotest.(check (list int)) "empty range" []
    (Ledger.clue_jsns_in_range env.ledger "customs" ~lo:5 ~hi:10)

let multi_clue_suite = [ tc "multi-clue journal" `Quick test_multi_clue_journal ]



let test_list_tx () =
  let env = make_env () in
  ignore (fill env 15);
  (match Ledger.anchor_via_t_ledger env.ledger with Ok _ -> () | Error _ -> assert false);
  (* all *)
  Alcotest.(check int) "no filter" 16
    (List.length (Ledger.list_tx env.ledger ()));
  (* by clue: served from the skip list *)
  Alcotest.(check (list int)) "by clue" [ 1; 4; 7; 10; 13 ]
    (Ledger.list_tx env.ledger
       ~filter:{ Ledger.any_tx with by_clue = Some "asset-1" } ());
  (* by member: alice appended the even journals *)
  let alices =
    Ledger.list_tx env.ledger
      ~filter:{ Ledger.any_tx with by_member = Some env.alice.Roles.id } ()
  in
  Alcotest.(check int) "alice's journals" 8 (List.length alices);
  Alcotest.(check bool) "all even" true (List.for_all (fun j -> j mod 2 = 0) alices);
  (* by kind *)
  Alcotest.(check int) "time journals" 1
    (List.length
       (Ledger.list_tx env.ledger
          ~filter:{ Ledger.any_tx with kinds = Some [ "time" ] } ()));
  (* temporal window *)
  let t5 = (Ledger.journal env.ledger 5).Journal.server_ts in
  let t10 = (Ledger.journal env.ledger 10).Journal.server_ts in
  Alcotest.(check (list int)) "window" [ 5; 6; 7; 8; 9 ]
    (Ledger.list_tx env.ledger
       ~filter:{ Ledger.any_tx with after_ts = Some t5; before_ts = Some t10 } ());
  (* limit *)
  Alcotest.(check (list int)) "limit" [ 0; 1; 2 ]
    (Ledger.list_tx env.ledger ~limit:3 ());
  (* composite: clue + member *)
  Alcotest.(check (list int)) "clue and member" [ 4; 10 ]
    (Ledger.list_tx env.ledger
       ~filter:{ Ledger.any_tx with by_clue = Some "asset-1";
                 by_member = Some env.alice.Roles.id } ())

let list_tx_suite = [ tc "list_tx filters" `Quick test_list_tx ]



let test_append_batch () =
  let env = make_env () in
  let entries =
    List.init 10 (fun i ->
        (Bytes.of_string (Printf.sprintf "batch %d" i), [ "b-clue" ]))
  in
  let receipts =
    Ledger.append_batch env.ledger ~member:env.alice ~priv:env.alice_key entries
  in
  Alcotest.(check int) "ten receipts" 10 (List.length receipts);
  Alcotest.(check int) "ten journals" 10 (Ledger.size env.ledger);
  List.iter
    (fun (r : Receipt.t) ->
      Alcotest.(check bool) "batch receipt final" true (Receipt.is_final r);
      Alcotest.(check bool) "batch receipt verifies" true
        (Ledger.verify_receipt env.ledger r))
    receipts;
  Alcotest.(check int) "clue updated" 10 (Ledger.clue_entries env.ledger "b-clue");
  Alcotest.(check bool) "audit after batch" true (Audit.run env.ledger).Audit.ok

let batch_suite = [ tc "append batch" `Quick test_append_batch ]



let test_member_ca () =
  let clock = Clock.create () in
  let ca_priv, ca_pub = Ecdsa.generate ~seed:"member-ca" in
  let config =
    { Ledger.default_config with name = "ca-test"; block_size = 4;
      fam_delta = 3; crypto = Crypto_profile.default_simulated;
      member_ca = Some ca_pub }
  in
  let ledger = Ledger.create ~config ~clock () in
  (* uncertified registration rejected *)
  let _, stray_pub = Ecdsa.generate ~seed:"stray" in
  (try
     ignore (Ledger.register_member ledger ~name:"stray" ~role:Roles.Regular_user stray_pub);
     Alcotest.fail "uncertified member accepted"
   with Invalid_argument _ -> ());
  (* a certificate from the wrong CA is rejected *)
  let rogue_priv, _ = Ecdsa.generate ~seed:"rogue-ca" in
  let bad_cert = Roles.certify ~ca_priv:rogue_priv stray_pub in
  (try
     ignore
       (Ledger.register_member ledger ~certificate:bad_cert ~name:"stray"
          ~role:Roles.Regular_user stray_pub);
     Alcotest.fail "rogue certificate accepted"
   with Invalid_argument _ -> ());
  (* proper certification works end to end *)
  let member, key = Ledger.new_member ~ca_priv ledger ~name:"certified" ~role:Roles.Regular_user in
  Alcotest.(check bool) "certificate recorded" true
    (Roles.certificate_of (Ledger.registry ledger) member.Roles.id <> None);
  for i = 0 to 5 do
    Clock.advance_ms clock 10.;
    ignore (Ledger.append ledger ~member ~priv:key (Bytes.of_string (string_of_int i)))
  done;
  let report = Audit.run ledger in
  Alcotest.(check bool) "certified ledger audits clean" true report.Audit.ok;
  (* the audit verifies certificates: forging the roster breaks it *)
  let forged = Roles.certify ~ca_priv:rogue_priv member.Roles.pub in
  Roles.record_certificate (Ledger.registry ledger) forged;
  let report = Audit.run ledger in
  Alcotest.(check bool) "forged certificate caught" false report.Audit.ok

let ca_suite = [ tc "member CA certification" `Quick test_member_ca ]

let suite =
  base_suite @ world_state_suite @ compaction_suite @ multi_clue_suite
  @ list_tx_suite @ batch_suite @ ca_suite
