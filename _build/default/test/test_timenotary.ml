(* Tests for the time-notary layer: TSA, pegging protocols, T-Ledger, and
   the Fig. 5 attack bounds. *)

open Ledger_crypto
open Ledger_storage
open Ledger_timenotary

let tc = Alcotest.test_case

let test_tsa_tokens () =
  let clock = Clock.create () in
  let tsa = Tsa.create ~endorse_rtt_ms:10. ~clock "nts" in
  let d = Hash.digest_string "ledger digest" in
  let token = Tsa.endorse tsa d in
  Alcotest.(check bool) "token verifies" true
    (Tsa.verify_token (Tsa.public_key tsa) token);
  Alcotest.(check bool) "chain verifies" true
    (Tsa.verify_token_with_chain tsa token);
  Alcotest.(check int64) "endorsement charged the clock" 10_000L
    token.Tsa.timestamp;
  (* tamper with the timestamp *)
  let forged = { token with Tsa.timestamp = 999L } in
  Alcotest.(check bool) "forged timestamp rejected" false
    (Tsa.verify_token (Tsa.public_key tsa) forged);
  (* tamper with the digest *)
  let forged = { token with Tsa.digest = Hash.digest_string "other" } in
  Alcotest.(check bool) "forged digest rejected" false
    (Tsa.verify_token (Tsa.public_key tsa) forged)

let test_tsa_pool () =
  let clock = Clock.create () in
  let a = Tsa.create ~endorse_rtt_ms:1. ~clock "a" in
  let b = Tsa.create ~endorse_rtt_ms:1. ~clock "b" in
  let pool = Tsa.pool [ a; b ] in
  let t1 = Tsa.pool_endorse pool (Hash.digest_string "1") in
  let t2 = Tsa.pool_endorse pool (Hash.digest_string "2") in
  Alcotest.(check bool) "round robin" false
    (Hash.equal t1.Tsa.tsa_id t2.Tsa.tsa_id);
  Alcotest.(check bool) "pool verifies both" true
    (Tsa.pool_verify pool t1 && Tsa.pool_verify pool t2);
  Alcotest.(check bool) "find by id" true (Tsa.pool_find pool t1.Tsa.tsa_id <> None);
  (* token from an authority outside the pool is rejected *)
  let outsider = Tsa.create ~endorse_rtt_ms:1. ~clock "mallory" in
  let alien = Tsa.endorse outsider (Hash.digest_string "1") in
  Alcotest.(check bool) "outsider rejected" false (Tsa.pool_verify pool alien)

let test_one_way_pegging () =
  let clock = Clock.create () in
  let peg = Pegging.One_way.create ~clock in
  let t0 = Pegging.One_way.enqueue peg (Hash.digest_string "a") in
  let t1 = Pegging.One_way.enqueue peg (Hash.digest_string "b") in
  Alcotest.(check int) "queued" 2 (Pegging.One_way.queued peg);
  Clock.advance_sec clock 5.;
  (match Pegging.One_way.anchor_next peg with
  | Some (t, ts) ->
      Alcotest.(check int) "FIFO" t0 t;
      Alcotest.(check int64) "anchored at operator's chosen time" 5_000_000L ts
  | None -> Alcotest.fail "expected an anchor");
  Alcotest.(check bool) "second still pending" true
    (Pegging.One_way.anchored_time peg t1 = None)

let test_two_way_pegging () =
  let clock = Clock.create () in
  let pool = Tsa.pool [ Tsa.create ~endorse_rtt_ms:2. ~clock "t" ] in
  let peg = Pegging.Two_way.create ~clock ~tsa:pool in
  let token = Pegging.Two_way.peg peg (Hash.digest_string "x") in
  Clock.advance_ms clock 30.;
  let idx = Pegging.Two_way.anchor_back peg token in
  (match Pegging.Two_way.anchored_token peg idx with
  | Some t -> Alcotest.(check bool) "token stored" true (Tsa.pool_verify pool t)
  | None -> Alcotest.fail "missing token");
  match Pegging.Two_way.anchor_back_time peg idx with
  | Some ts ->
      Alcotest.(check bool) "anchor-back later than endorsement" true
        (Int64.compare ts token.Tsa.timestamp > 0)
  | None -> Alcotest.fail "missing anchor time"

let make_tl ?(tau_delta_ms = 500.) ?(anchor_interval_ms = 1000.) () =
  let clock = Clock.create () in
  let pool = Tsa.pool [ Tsa.create ~endorse_rtt_ms:1. ~clock "t" ] in
  (clock, T_ledger.create ~tau_delta_ms ~anchor_interval_ms ~clock ~tsa:pool ())

let test_t_ledger_protocol4 () =
  let clock, tl = make_tl () in
  let lid = Hash.digest_string "ledger-1" in
  (* fresh submission accepted *)
  (match
     T_ledger.submit tl ~ledger_id:lid ~digest:(Hash.digest_string "d1")
       ~client_ts:(Clock.now clock)
   with
  | Ok e -> Alcotest.(check int) "first entry" 0 e.T_ledger.index
  | Error _ -> Alcotest.fail "fresh submission rejected");
  (* stale submission rejected: client_ts too old vs notary clock *)
  let stale_ts = Clock.now clock in
  Clock.advance_ms clock 600.;
  (match
     T_ledger.submit tl ~ledger_id:lid ~digest:(Hash.digest_string "d2")
       ~client_ts:stale_ts
   with
  | Ok _ -> Alcotest.fail "stale submission accepted"
  | Error (T_ledger.Stale_submission { client_ts; notary_ts }) ->
      Alcotest.(check bool) "error fields" true
        (Int64.compare notary_ts client_ts > 0));
  ()

let test_t_ledger_anchoring_and_bounds () =
  let clock, tl = make_tl () in
  ignore (T_ledger.force_anchor tl);
  let lid = Hash.digest_string "ledger-1" in
  let submit i =
    Clock.advance_ms clock 300.;
    match
      T_ledger.submit tl ~ledger_id:lid
        ~digest:(Hash.digest_string (string_of_int i))
        ~client_ts:(Clock.now clock)
    with
    | Ok e -> e
    | Error _ -> Alcotest.fail "submission rejected"
  in
  let entries = List.init 8 submit in
  Clock.advance_ms clock 1500.;
  T_ledger.tick tl;
  (* every ledger-digest entry has verified TSA bounds on both sides *)
  List.iter
    (fun (e : T_ledger.entry) ->
      match T_ledger.verify_entry_time tl e.T_ledger.index with
      | Some (Some lo, Some hi) ->
          Alcotest.(check bool) "bounds ordered" true (Int64.compare lo hi < 0);
          Alcotest.(check bool) "entry inside bounds" true
            (Int64.compare lo e.T_ledger.notary_ts <= 0
            && Int64.compare e.T_ledger.notary_ts hi <= 0)
      | _ -> Alcotest.fail "missing bounds")
    entries;
  (* existence proofs *)
  let e3 = List.nth entries 3 in
  let path = T_ledger.prove_entry tl e3.T_ledger.index in
  Alcotest.(check bool) "entry proof" true
    (T_ledger.verify_entry ~root:(T_ledger.root tl) ~entry:e3 path);
  let forged = { e3 with T_ledger.digest = Hash.digest_string "forged" } in
  Alcotest.(check bool) "forged entry rejected" false
    (T_ledger.verify_entry ~root:(T_ledger.root tl) ~entry:forged path);
  Alcotest.(check bool) "anchors recorded" true
    (List.length (T_ledger.anchors_between tl 0 (T_ledger.entry_count tl - 1)) >= 2)

let test_t_ledger_periodic_anchor () =
  let clock, tl = make_tl ~anchor_interval_ms:100. () in
  let before = T_ledger.entry_count tl in
  Clock.advance_ms clock 150.;
  T_ledger.tick tl;
  Clock.advance_ms clock 50.;
  T_ledger.tick tl (* too soon: no new anchor *);
  Clock.advance_ms clock 100.;
  T_ledger.tick tl;
  Alcotest.(check int) "two anchors fired" (before + 2) (T_ledger.entry_count tl)

let test_attack_one_way_unbounded () =
  List.iter
    (fun delay ->
      let o = Attack.one_way_amplification ~delay_s:delay in
      Alcotest.(check bool) "window equals delay" true
        (abs_float (o.Attack.window_s -. delay) < 0.01);
      Alcotest.(check bool) "unbounded" false o.Attack.bounded)
    [ 0.5; 3.; 120. ]

let test_attack_two_way_bounded () =
  List.iter
    (fun delay ->
      let o = Attack.two_way_window ~delta_tau_s:1.0 ~attempted_delay_s:delay in
      Alcotest.(check bool)
        (Printf.sprintf "window bounded for delay %.1f" delay)
        true
        (o.Attack.window_s <= 2.01);
      Alcotest.(check bool) "flagged bounded" true o.Attack.bounded)
    [ 0.1; 1.; 30.; 600. ];
  (* the bound scales with delta_tau *)
  let o = Attack.two_way_window ~delta_tau_s:0.2 ~attempted_delay_s:60. in
  Alcotest.(check bool) "tighter delta_tau, tighter bound" true
    (o.Attack.window_s <= 0.41)

let test_attack_sweep_shape () =
  let outcomes = Attack.sweep ~delta_tau_s:1.0 ~delays_s:[ 1.; 100. ] in
  Alcotest.(check int) "two protocols per delay" 4 (List.length outcomes);
  let one_way_100 =
    List.find
      (fun o ->
        o.Attack.attempted_delay_s = 100. && not o.Attack.bounded)
      outcomes
  in
  let two_way_100 =
    List.find
      (fun o -> o.Attack.attempted_delay_s = 100. && o.Attack.bounded)
      outcomes
  in
  Alcotest.(check bool) "amplification vs bound" true
    (one_way_100.Attack.window_s > 10. *. two_way_100.Attack.window_s)

let base_suite =
  [
    tc "tsa tokens" `Quick test_tsa_tokens;
    tc "tsa pool" `Quick test_tsa_pool;
    tc "one-way pegging" `Quick test_one_way_pegging;
    tc "two-way pegging" `Quick test_two_way_pegging;
    tc "t-ledger protocol 4" `Quick test_t_ledger_protocol4;
    tc "t-ledger anchors and bounds" `Quick test_t_ledger_anchoring_and_bounds;
    tc "t-ledger periodic anchor" `Quick test_t_ledger_periodic_anchor;
    tc "attack: one-way unbounded" `Quick test_attack_one_way_unbounded;
    tc "attack: two-way bounded" `Quick test_attack_two_way_bounded;
    tc "attack: sweep shape" `Quick test_attack_sweep_shape;
  ]

(* --- multi-ledger T-Ledger ---------------------------------------------------- *)

let test_t_ledger_serves_many_ledgers () =
  (* the T-Ledger is one public notary for all ledgers (§III-B2): several
     ledgers interleave submissions, and each gets correct bounds *)
  let clock = Clock.create () in
  let pool = Tsa.pool [ Tsa.create ~endorse_rtt_ms:1. ~clock "shared" ] in
  let tl = T_ledger.create ~clock ~tsa:pool () in
  ignore (T_ledger.force_anchor tl);
  let ledger_ids =
    List.init 4 (fun i -> Hash.digest_string ("ledger-" ^ string_of_int i))
  in
  let submissions = ref [] in
  for round = 0 to 5 do
    List.iteri
      (fun i lid ->
        Clock.advance_ms clock 40.;
        match
          T_ledger.submit tl ~ledger_id:lid
            ~digest:(Hash.digest_string (Printf.sprintf "d-%d-%d" i round))
            ~client_ts:(Clock.now clock)
        with
        | Ok e -> submissions := (lid, e) :: !submissions
        | Error _ -> Alcotest.fail "submission rejected")
      ledger_ids
  done;
  Clock.advance_ms clock 1200.;
  T_ledger.tick tl;
  Alcotest.(check int) "24 submissions" 24 (List.length !submissions);
  (* every ledger's every entry is provable and time-bounded *)
  List.iter
    (fun (lid, (e : T_ledger.entry)) ->
      (match e.T_ledger.kind with
      | T_ledger.Ledger_digest { ledger_id; _ } ->
          Alcotest.(check bool) "entry names its ledger" true
            (Hash.equal ledger_id lid)
      | T_ledger.Tsa_anchor _ -> Alcotest.fail "unexpected anchor");
      let path = T_ledger.prove_entry tl e.T_ledger.index in
      Alcotest.(check bool) "entry provable" true
        (T_ledger.verify_entry ~root:(T_ledger.root tl) ~entry:e path);
      match T_ledger.verify_entry_time tl e.T_ledger.index with
      | Some (Some _, Some _) -> ()
      | _ -> Alcotest.fail "entry lacks TSA bounds")
    !submissions

let multi_ledger_suite =
  [ tc "t-ledger serves many ledgers" `Quick test_t_ledger_serves_many_ledgers ]

let suite = base_suite @ multi_ledger_suite
