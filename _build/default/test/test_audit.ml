(* Tests for the Dasein-complete audit: a clean ledger passes, and every
   threat class from §II-B is caught in the right factor. *)

open Ledger_crypto
open Ledger_storage
open Ledger_core
open Ledger_timenotary

let tc = Alcotest.test_case

type env = {
  clock : Clock.t;
  ledger : Ledger.t;
  alice : Roles.member;
  alice_key : Ecdsa.private_key;
  dba : Roles.member;
  dba_key : Ecdsa.private_key;
  regulator : Roles.member;
  regulator_key : Ecdsa.private_key;
  receipts : Receipt.t list;
}

let make ?(n = 24) ?(anchor_every = 8) () =
  let clock = Clock.create () in
  let pool = Tsa.pool [ Tsa.create ~endorse_rtt_ms:1. ~clock "nts" ] in
  let tl = T_ledger.create ~clock ~tsa:pool () in
  let config =
    { Ledger.default_config with name = "audit-test"; block_size = 8;
      fam_delta = 4; crypto = Crypto_profile.default_simulated }
  in
  let ledger = Ledger.create ~config ~t_ledger:tl ~tsa:pool ~clock () in
  let alice, alice_key = Ledger.new_member ledger ~name:"alice" ~role:Roles.Regular_user in
  let dba, dba_key = Ledger.new_member ledger ~name:"dba" ~role:Roles.Dba in
  let regulator, regulator_key =
    Ledger.new_member ledger ~name:"regulator" ~role:Roles.Regulator
  in
  let receipts = ref [] in
  for i = 0 to n - 1 do
    Clock.advance_ms clock 100.;
    let r =
      Ledger.append ledger ~member:alice ~priv:alice_key
        ~clues:[ "c" ^ string_of_int (i mod 2) ]
        (Bytes.of_string (Printf.sprintf "data %d" i))
    in
    receipts := r :: !receipts;
    if (i + 1) mod anchor_every = 0 then begin
      Clock.advance_ms clock 1000.;
      match Ledger.anchor_via_t_ledger ledger with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "anchoring rejected"
    end
  done;
  Ledger.seal_block ledger;
  { clock; ledger; alice; alice_key; dba; dba_key; regulator; regulator_key;
    receipts = !receipts }

let failures_in factor report =
  List.filter (fun f -> f.Audit.factor = factor) report.Audit.failures

let test_clean_audit () =
  let env = make () in
  let report = Audit.run ~receipts:env.receipts env.ledger in
  if not report.Audit.ok then
    Alcotest.fail
      (Format.asprintf "clean audit failed: %a" Audit.pp_report report);
  Alcotest.(check int) "journals checked" (Ledger.size env.ledger)
    report.Audit.journals_checked;
  Alcotest.(check bool) "anchors checked" true
    (report.Audit.time_anchors_checked >= 3);
  Alcotest.(check bool) "blocks checked" true (report.Audit.blocks_checked >= 3);
  Alcotest.(check bool) "signatures checked" true
    (report.Audit.signatures_checked > Ledger.size env.ledger)

let test_threat_b_naive_rewrite () =
  (* the adversary rewrites a payload without touching hashes *)
  let env = make () in
  Ledger.Unsafe.rewrite_payload env.ledger ~jsn:5 (Bytes.of_string "EVIL");
  let report = Audit.run env.ledger in
  Alcotest.(check bool) "audit fails" false report.Audit.ok;
  Alcotest.(check bool) "what factor flags it" true
    (failures_in Audit.What report <> [] || failures_in Audit.Who report <> [])

let test_threat_c_consistent_rewrite () =
  (* LSP rewrites payload and request hash, but cannot re-sign as the
     client: pi_c must fail *)
  let env = make () in
  Ledger.Unsafe.rewrite_payload_consistent env.ledger ~jsn:6
    (Bytes.of_string "EVIL2");
  let report = Audit.run env.ledger in
  Alcotest.(check bool) "audit fails" false report.Audit.ok;
  Alcotest.(check bool) "who factor flags it" true
    (failures_in Audit.Who report <> [])

let test_threat_b_timestamp_forgery () =
  let env = make () in
  (* backdate a journal to violate monotonicity *)
  Ledger.Unsafe.forge_server_ts env.ledger ~jsn:10 1L;
  let report = Audit.run env.ledger in
  Alcotest.(check bool) "audit fails" false report.Audit.ok;
  Alcotest.(check bool) "when factor flags it" true
    (failures_in Audit.When report <> [])

let test_receipt_repudiation () =
  (* receipts held by the client catch the LSP after tampering: the
     tx-hash in the receipt no longer matches the ledger *)
  let env = make () in
  Ledger.Unsafe.rewrite_payload_consistent env.ledger ~jsn:3
    (Bytes.of_string "rewritten");
  let report = Audit.run ~receipts:env.receipts env.ledger in
  Alcotest.(check bool) "audit fails" false report.Audit.ok

let test_forged_receipt () =
  let env = make () in
  let r = List.hd env.receipts in
  let forged = { r with Receipt.tx_hash = Hash.digest_string "other" } in
  let report = Audit.run ~receipts:[ forged ] env.ledger in
  Alcotest.(check bool) "forged receipt caught" false report.Audit.ok;
  Alcotest.(check bool) "who factor" true (failures_in Audit.Who report <> [])

let test_audit_after_occult () =
  let env = make () in
  (match
     Ledger.occult env.ledger ~target_jsn:4 ~mode:Ledger.Sync
       ~signers:[ (env.dba, env.dba_key); (env.regulator, env.regulator_key) ]
       ~reason:"pii"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let report = Audit.run env.ledger in
  Alcotest.(check bool) "occulted ledger still audits clean" true report.Audit.ok

let test_audit_after_purge () =
  let env = make () in
  let affected = Ledger.affected_members env.ledger ~upto_jsn:10 in
  let signers =
    (env.dba, env.dba_key)
    :: List.map
         (fun (m : Roles.member) ->
           if m.Roles.name = "alice" then (m, env.alice_key)
           else Alcotest.fail "unexpected member")
         affected
  in
  (match
     Ledger.purge env.ledger
       ~request:{ Ledger.upto_jsn = 10; survivors = []; erase_fam_nodes = false }
       ~signers
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let report = Audit.run env.ledger in
  Alcotest.(check bool) "post-purge audit clean (Protocol 1)" true report.Audit.ok;
  (* audit after purge starts from the pseudo-genesis, not jsn 0 *)
  Alcotest.(check bool) "audit scope shrank" true
    (report.Audit.journals_checked < Ledger.size env.ledger)

let test_audit_range () =
  let env = make () in
  let report = Audit.run ~from_jsn:5 ~upto_jsn:15 env.ledger in
  Alcotest.(check bool) "range audit passes" true report.Audit.ok;
  Alcotest.(check int) "range size" 10 report.Audit.journals_checked;
  (* tampering outside the range is not flagged by a range audit *)
  Ledger.Unsafe.rewrite_payload env.ledger ~jsn:2 (Bytes.of_string "EVIL");
  let scoped = Audit.run ~from_jsn:5 ~upto_jsn:15 env.ledger in
  Alcotest.(check bool) "out-of-scope tamper unseen" true scoped.Audit.ok;
  let full = Audit.run env.ledger in
  Alcotest.(check bool) "full audit sees it" false full.Audit.ok

let test_anchored_digest_divergence () =
  (* after tampering, the replayed commitment no longer matches the digest
     the T-Ledger anchored — even if the LSP recomputed its own trees *)
  let env = make () in
  Ledger.Unsafe.rewrite_payload_consistent env.ledger ~jsn:2
    (Bytes.of_string "history rewritten");
  let report = Audit.run env.ledger in
  let messages =
    List.map (fun f -> f.Audit.message) (failures_in Audit.What report)
  in
  Alcotest.(check bool) "replay divergence reported" true
    (List.exists
       (fun m ->
         let contains hay needle =
           let n = String.length needle and h = String.length hay in
           let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
           go 0
         in
         contains m "diverges" || contains m "tx-hash")
       messages)

let base_suite =
  [
    tc "clean audit passes" `Quick test_clean_audit;
    tc "threat-B naive rewrite caught" `Quick test_threat_b_naive_rewrite;
    tc "threat-C consistent rewrite caught" `Quick test_threat_c_consistent_rewrite;
    tc "threat-B timestamp forgery caught" `Quick test_threat_b_timestamp_forgery;
    tc "receipt repudiation caught" `Quick test_receipt_repudiation;
    tc "forged receipt caught" `Quick test_forged_receipt;
    tc "audit after occult" `Quick test_audit_after_occult;
    tc "audit after purge" `Quick test_audit_after_purge;
    tc "temporal range audit" `Quick test_audit_range;
    tc "anchored digest divergence" `Quick test_anchored_digest_divergence;
  ]

let test_temporal_predicate () =
  let env = make () in
  (* pick the timestamp of journal 10 as the bound: only journals strictly
     before it are audited *)
  let bound = (Ledger.journal env.ledger 10).Journal.server_ts in
  let report = Audit.run ~before_ts:bound env.ledger in
  Alcotest.(check bool) "temporal audit passes" true report.Audit.ok;
  Alcotest.(check int) "scope cut at the bound" 10 report.Audit.journals_checked;
  (* tamper beyond the bound: the temporal audit stays clean, a full one fails *)
  Ledger.Unsafe.rewrite_payload env.ledger ~jsn:15 (Bytes.of_string "EVIL");
  Alcotest.(check bool) "out-of-window tamper unseen" true
    (Audit.run ~before_ts:bound env.ledger).Audit.ok;
  Alcotest.(check bool) "full audit sees it" false (Audit.run env.ledger).Audit.ok;
  (* a bound before everything audits nothing; far future audits all *)
  Alcotest.(check int) "empty window" 0
    (Audit.run ~before_ts:0L env.ledger).Audit.journals_checked;
  Alcotest.(check int) "full window" (Ledger.size env.ledger)
    (Audit.run ~before_ts:Int64.max_int env.ledger).Audit.journals_checked

let temporal_suite = [ tc "temporal predicate" `Quick test_temporal_predicate ]

let suite = base_suite @ temporal_suite
