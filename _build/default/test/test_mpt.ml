(* Tests for the Merkle Patricia Trie and the ccMPT baseline. *)

open Ledger_crypto
open Ledger_merkle
open Ledger_mpt

let tc = Alcotest.test_case
let qcheck = QCheck_alcotest.to_alcotest

let test_nibbles () =
  let n = Nibble.of_bytes (Bytes.of_string "\xAB\xCD") in
  Alcotest.(check (list int)) "high nibble first" [ 0xA; 0xB; 0xC; 0xD ]
    (Array.to_list n);
  Alcotest.(check string) "hex render" "abcd" (Nibble.to_string n);
  Alcotest.(check int) "64 nibbles per hash" 64
    (Array.length (Nibble.of_hash (Hash.digest_string "x")));
  let a = [| 1; 2; 3; 4 |] and b = [| 1; 2; 9 |] in
  Alcotest.(check int) "common prefix" 2 (Nibble.common_prefix_length a 0 b 0);
  Alcotest.(check int) "offset prefix" 1 (Nibble.common_prefix_length a 1 b 1)

let test_mpt_basics () =
  let t = Mpt.create () in
  Alcotest.(check bool) "empty root" true (Hash.equal Hash.zero (Mpt.root_hash t));
  Mpt.insert_string t ~key:"alpha" (Bytes.of_string "1");
  Mpt.insert_string t ~key:"beta" (Bytes.of_string "2");
  Alcotest.(check (option string)) "find alpha" (Some "1")
    (Option.map Bytes.to_string (Mpt.find_string t ~key:"alpha"));
  Alcotest.(check (option string)) "find missing" None
    (Option.map Bytes.to_string (Mpt.find_string t ~key:"gamma"));
  Alcotest.(check int) "cardinal" 2 (Mpt.cardinal t);
  let before = Mpt.root_hash t in
  Mpt.insert_string t ~key:"alpha" (Bytes.of_string "1'");
  Alcotest.(check int) "overwrite keeps cardinal" 2 (Mpt.cardinal t);
  Alcotest.(check bool) "root changes" false
    (Hash.equal before (Mpt.root_hash t))

let test_mpt_root_insensitive_to_order () =
  let items = List.init 50 (fun i -> (Printf.sprintf "key-%d" i, string_of_int i)) in
  let build order =
    let t = Mpt.create () in
    List.iter (fun (k, v) -> Mpt.insert_string t ~key:k (Bytes.of_string v)) order;
    Mpt.root_hash t
  in
  let r1 = build items and r2 = build (List.rev items) in
  Alcotest.(check bool) "same content, same root" true (Hash.equal r1 r2)

let prop_mpt_model =
  (* trie agrees with a Hashtbl model under random insertions, including
     key overwrites *)
  QCheck.Test.make ~name:"mpt agrees with map model" ~count:60
    QCheck.(small_list (pair (int_range 0 40) small_nat))
    (fun ops ->
      let t = Mpt.create () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          let key = "k" ^ string_of_int k in
          Mpt.insert_string t ~key (Bytes.of_string (string_of_int v));
          Hashtbl.replace model key (string_of_int v))
        ops;
      Hashtbl.length model = Mpt.cardinal t
      && Hashtbl.fold
           (fun k v acc ->
             acc
             && Mpt.find_string t ~key:k = Some (Bytes.of_string v))
           model true)

let prop_mpt_proofs =
  QCheck.Test.make ~name:"mpt proofs verify and bind values" ~count:40
    (QCheck.int_range 1 80) (fun n ->
      let t = Mpt.create () in
      for i = 0 to n - 1 do
        Mpt.insert_string t
          ~key:("key-" ^ string_of_int i)
          (Bytes.of_string (string_of_int (i * i)))
      done;
      let root = Mpt.root_hash t in
      List.for_all
        (fun i ->
          let key = "key-" ^ string_of_int i in
          match Mpt.prove_string t ~key with
          | None -> false
          | Some proof ->
              Mpt.verify_proof_string ~root ~key
                ~value:(Bytes.of_string (string_of_int (i * i)))
                proof
              && not
                   (Mpt.verify_proof_string ~root ~key
                      ~value:(Bytes.of_string "forged") proof))
        (List.init n Fun.id))

let test_mpt_proof_wrong_root () =
  let t = Mpt.create () in
  Mpt.insert_string t ~key:"a" (Bytes.of_string "1");
  Mpt.insert_string t ~key:"b" (Bytes.of_string "2");
  let proof = Option.get (Mpt.prove_string t ~key:"a") in
  let root = Mpt.root_hash t in
  Mpt.insert_string t ~key:"c" (Bytes.of_string "3");
  Alcotest.(check bool) "stale proof fails on new root" false
    (Mpt.verify_proof_string ~root:(Mpt.root_hash t) ~key:"a"
       ~value:(Bytes.of_string "1") proof);
  Alcotest.(check bool) "stale proof valid on old root" true
    (Mpt.verify_proof_string ~root ~key:"a" ~value:(Bytes.of_string "1") proof)

let test_mpt_raw_keys () =
  (* raw nibble keys exercise extension splitting deterministically *)
  let t = Mpt.create () in
  let k1 = [| 1; 2; 3; 4 |] and k2 = [| 1; 2; 3; 5 |] and k3 = [| 1; 9 |] in
  Mpt.insert t ~key:k1 (Bytes.of_string "a");
  Mpt.insert t ~key:k2 (Bytes.of_string "b");
  Mpt.insert t ~key:k3 (Bytes.of_string "c");
  Alcotest.(check (option string)) "k1" (Some "a")
    (Option.map Bytes.to_string (Mpt.find t ~key:k1));
  Alcotest.(check (option string)) "k2" (Some "b")
    (Option.map Bytes.to_string (Mpt.find t ~key:k2));
  Alcotest.(check (option string)) "k3" (Some "c")
    (Option.map Bytes.to_string (Mpt.find t ~key:k3));
  Alcotest.(check bool) "depth positive" true (Mpt.lookup_depth t ~key:k1 > 0);
  let root = Mpt.root_hash t in
  List.iter
    (fun (k, v) ->
      let proof = Option.get (Mpt.prove t ~key:k) in
      Alcotest.(check bool) "raw proof" true
        (Mpt.verify_proof ~root ~key:k ~value:(Bytes.of_string v) proof))
    [ (k1, "a"); (k2, "b"); (k3, "c") ]

let test_mpt_value_at_branch () =
  (* a key that is a strict prefix of another puts its value on a branch *)
  let t = Mpt.create () in
  let short = [| 1; 2 |] and long = [| 1; 2; 3 |] in
  Mpt.insert t ~key:long (Bytes.of_string "long");
  Mpt.insert t ~key:short (Bytes.of_string "short");
  Alcotest.(check (option string)) "short" (Some "short")
    (Option.map Bytes.to_string (Mpt.find t ~key:short));
  Alcotest.(check (option string)) "long" (Some "long")
    (Option.map Bytes.to_string (Mpt.find t ~key:long));
  let root = Mpt.root_hash t in
  let proof = Option.get (Mpt.prove t ~key:short) in
  Alcotest.(check bool) "branch-value proof" true
    (Mpt.verify_proof ~root ~key:short ~value:(Bytes.of_string "short") proof)

(* --- ccMPT ----------------------------------------------------------------- *)

let jd i = Hash.digest_string ("j" ^ string_of_int i)

let test_ccmpt () =
  let acc = Accumulator.create () in
  let cc = Ccmpt.create acc in
  for i = 0 to 199 do
    ignore (Accumulator.append acc (jd i));
    Ccmpt.add cc ~clue:("c" ^ string_of_int (i mod 20)) ~jsn:i
  done;
  Alcotest.(check int) "counter" 10 (Ccmpt.counter cc ~clue:"c3");
  Alcotest.(check int) "jsns count" 10 (List.length (Ccmpt.jsns cc ~clue:"c3"));
  Alcotest.(check (list int)) "jsns ordered" [ 3; 23; 43 ]
    (List.filteri (fun i _ -> i < 3) (Ccmpt.jsns cc ~clue:"c3"));
  let proof = Option.get (Ccmpt.prove_clue cc ~clue:"c3") in
  Alcotest.(check bool) "verifies" true
    (Ccmpt.verify_clue cc ~clue:"c3" ~mpt_root:(Ccmpt.root_hash cc)
       ~acc_root:(Accumulator.root acc) proof);
  Alcotest.(check bool) "wrong clue fails" false
    (Ccmpt.verify_clue cc ~clue:"c4" ~mpt_root:(Ccmpt.root_hash cc)
       ~acc_root:(Accumulator.root acc) proof);
  Alcotest.(check bool) "unknown clue" true
    (Ccmpt.prove_clue cc ~clue:"nope" = None);
  Alcotest.(check int) "unknown counter" 0 (Ccmpt.counter cc ~clue:"nope")

let test_ccmpt_detects_dropped_journal () =
  (* a cheating server that hides one of the m journals fails the count *)
  let acc = Accumulator.create () in
  let cc = Ccmpt.create acc in
  for i = 0 to 9 do
    ignore (Accumulator.append acc (jd i));
    Ccmpt.add cc ~clue:"k" ~jsn:i
  done;
  let proof = Option.get (Ccmpt.prove_clue cc ~clue:"k") in
  let truncated =
    { proof with Ccmpt.journal_proofs = List.tl proof.Ccmpt.journal_proofs }
  in
  Alcotest.(check bool) "missing journal detected" false
    (Ccmpt.verify_clue cc ~clue:"k" ~mpt_root:(Ccmpt.root_hash cc)
       ~acc_root:(Accumulator.root acc) truncated)

let base_suite =
  [
    tc "nibbles" `Quick test_nibbles;
    tc "mpt basics" `Quick test_mpt_basics;
    tc "mpt order independence" `Quick test_mpt_root_insensitive_to_order;
    qcheck prop_mpt_model;
    qcheck prop_mpt_proofs;
    tc "mpt stale proof" `Quick test_mpt_proof_wrong_root;
    tc "mpt raw keys" `Quick test_mpt_raw_keys;
    tc "mpt value at branch" `Quick test_mpt_value_at_branch;
    tc "ccmpt" `Quick test_ccmpt;
    tc "ccmpt dropped journal" `Quick test_ccmpt_detects_dropped_journal;
  ]

(* random raw nibble keys, including prefix relationships *)
let prop_mpt_raw_fuzz =
  QCheck.Test.make ~name:"mpt fuzz with raw nibble keys" ~count:60
    QCheck.(small_list (pair (list_of_size (Gen.int_range 1 6) (int_range 0 15)) small_nat))
    (fun ops ->
      let t = Mpt.create () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (key_list, v) ->
          let key = Array.of_list key_list in
          let value = Bytes.of_string (string_of_int v) in
          Mpt.insert t ~key value;
          Hashtbl.replace model key_list value)
        ops;
      let root = Mpt.root_hash t in
      Hashtbl.fold
        (fun key_list value acc ->
          let key = Array.of_list key_list in
          acc
          && Mpt.find t ~key = Some value
          &&
          match Mpt.prove t ~key with
          | None -> false
          | Some proof -> Mpt.verify_proof ~root ~key ~value proof)
        model true)

let fuzz_suite = [ qcheck prop_mpt_raw_fuzz ]

let suite = base_suite @ fuzz_suite
