(* Unit tests for the smaller ledger-core modules: roles, crypto profiles,
   journal hashing, the wire codec, receipts and blocks. *)

open Ledger_crypto
open Ledger_storage
open Ledger_core
open Ledger_timenotary

let tc = Alcotest.test_case
let qcheck = QCheck_alcotest.to_alcotest

(* --- roles ------------------------------------------------------------- *)

let test_roles () =
  let reg = Roles.create_registry () in
  let _, pub_a = Ecdsa.generate ~seed:"a" in
  let _, pub_b = Ecdsa.generate ~seed:"b" in
  let a = Roles.register reg ~name:"a" ~role:Roles.Regular_user pub_a in
  let _b = Roles.register reg ~name:"b" ~role:Roles.Dba pub_b in
  Alcotest.(check int) "cardinal" 2 (Roles.cardinal reg);
  Alcotest.(check bool) "find by id" true (Roles.find reg a.Roles.id <> None);
  Alcotest.(check bool) "find by name" true (Roles.find_by_name reg "b" <> None);
  Alcotest.(check int) "role filter" 1 (List.length (Roles.with_role reg Roles.Dba));
  Alcotest.(check string) "role strings" "regulator"
    (Roles.role_to_string Roles.Regulator);
  Alcotest.check_raises "duplicate key rejected"
    (Invalid_argument "Roles.register: key already registered for a2") (fun () ->
      ignore (Roles.register reg ~name:"a2" ~role:Roles.Regular_user pub_a))

(* --- crypto profiles ----------------------------------------------------- *)

let test_crypto_profile_real () =
  let clock = Clock.create () in
  let priv, pub = Ecdsa.generate ~seed:"p" in
  let d = Hash.digest_string "m" in
  let s = Crypto_profile.sign Crypto_profile.Real clock ~priv ~pub d in
  Alcotest.(check bool) "real verifies" true
    (Crypto_profile.verify Crypto_profile.Real clock ~pub d s);
  Alcotest.(check int64) "real charges nothing" 0L (Clock.now clock);
  (* real signatures are genuine ECDSA *)
  Alcotest.(check bool) "interops with Ecdsa" true (Ecdsa.verify pub d s)

let test_crypto_profile_simulated () =
  let clock = Clock.create () in
  let profile = Crypto_profile.Simulated { sign_us = 30.; verify_us = 70. } in
  let priv, pub = Ecdsa.generate ~seed:"p" in
  let d = Hash.digest_string "m" in
  let s = Crypto_profile.sign profile clock ~priv ~pub d in
  Alcotest.(check int64) "sign charged" 30L (Clock.now clock);
  Alcotest.(check bool) "simulated verifies" true
    (Crypto_profile.verify profile clock ~pub d s);
  Alcotest.(check int64) "verify charged" 100L (Clock.now clock);
  (* binding: different digest or key fails *)
  Alcotest.(check bool) "wrong digest fails" false
    (Crypto_profile.verify profile clock ~pub (Hash.digest_string "x") s);
  let _, pub2 = Ecdsa.generate ~seed:"q" in
  Alcotest.(check bool) "wrong key fails" false
    (Crypto_profile.verify profile clock ~pub:pub2 d s)

(* --- journal hashing -------------------------------------------------------- *)

let sample_journal ?(kind = Journal.Normal) ?(payload = "payload") () =
  {
    Journal.jsn = 7;
    kind;
    client_id = Hash.digest_string "member";
    payload = Bytes.of_string payload;
    clues = [ "a"; "b" ];
    client_ts = 123L;
    server_ts = 456L;
    nonce = 9;
    request_hash = Hash.digest_string "request";
    client_sig = None;
    cosigners = [];
  }

let test_journal_tx_hash_sensitivity () =
  let base = Journal.tx_hash (sample_journal ()) in
  let variants =
    [
      ("payload", sample_journal ~payload:"payload2" ());
      ("jsn", { (sample_journal ()) with Journal.jsn = 8 });
      ("clues", { (sample_journal ()) with Journal.clues = [ "ab" ] });
      ("kind", sample_journal ~kind:(Journal.Occult
          { target_jsn = 1; retained_hash = Hash.zero }) ());
      ("server_ts", { (sample_journal ()) with Journal.server_ts = 457L });
    ]
  in
  List.iter
    (fun (what, j) ->
      Alcotest.(check bool) (what ^ " changes tx hash") false
        (Hash.equal base (Journal.tx_hash j)))
    variants;
  (* clue list framing is injective: ["ab"] vs ["a";"b"] differ *)
  let j1 = { (sample_journal ()) with Journal.clues = [ "ab" ] } in
  let j2 = { (sample_journal ()) with Journal.clues = [ "a"; "b" ] } in
  Alcotest.(check bool) "clue framing" false
    (Hash.equal (Journal.tx_hash j1) (Journal.tx_hash j2))

let test_request_digest () =
  let d ~nonce ~payload =
    Journal.request_digest ~ledger_uri:"ledger://x" ~kind_tag:"normal"
      ~payload:(Bytes.of_string payload) ~clues:[ "c" ] ~client_ts:1L ~nonce
  in
  Alcotest.(check bool) "nonce separates" false
    (Hash.equal (d ~nonce:1 ~payload:"p") (d ~nonce:2 ~payload:"p"));
  Alcotest.(check bool) "payload bound" false
    (Hash.equal (d ~nonce:1 ~payload:"p") (d ~nonce:1 ~payload:"q"));
  Alcotest.(check bool) "deterministic" true
    (Hash.equal (d ~nonce:1 ~payload:"p") (d ~nonce:1 ~payload:"p"))

(* --- codec -------------------------------------------------------------------- *)

let journals_for_codec () =
  let clock = Clock.create () in
  let tsa = Tsa.create ~endorse_rtt_ms:0. ~clock "codec-tsa" in
  let priv, _ = Ecdsa.generate ~seed:"codec" in
  let token = Tsa.endorse tsa (Hash.digest_string "digest") in
  [
    sample_journal ();
    { (sample_journal ()) with
      Journal.client_sig = Some (Ecdsa.sign priv (Hash.digest_string "r"));
      cosigners =
        [ (Hash.digest_string "c1", Ecdsa.sign priv (Hash.digest_string "r")) ] };
    sample_journal ~kind:(Journal.Time (Journal.Direct_tsa token)) ();
    sample_journal
      ~kind:(Journal.Time (Journal.Via_t_ledger
          { entry_index = 3; client_ts = 5L; digest = Hash.digest_string "d" })) ();
    sample_journal
      ~kind:(Journal.Purge
          { purge_upto = 10; pseudo_genesis_jsn = 11; survivors = [ 2; 5 ] }) ();
    sample_journal
      ~kind:(Journal.Occult
          { target_jsn = 4; retained_hash = Hash.digest_string "kept" }) ();
    sample_journal
      ~kind:(Journal.Pseudo_genesis
          { replaced_purge_jsn = 12; fam_commitment = Hash.digest_string "f";
            clue_root = Hash.digest_string "c";
            member_roster = Hash.digest_string "m" }) ();
    sample_journal ~payload:"" ();
  ]

let test_codec_roundtrip () =
  List.iteri
    (fun i j ->
      match Journal_codec.decode (Journal_codec.encode j) with
      | None -> Alcotest.failf "journal %d failed to decode" i
      | Some j' ->
          Alcotest.(check bool)
            (Printf.sprintf "journal %d tx hash stable" i)
            true
            (Hash.equal (Journal.tx_hash j) (Journal.tx_hash j'));
          Alcotest.(check int) "jsn" j.Journal.jsn j'.Journal.jsn;
          Alcotest.(check (list string)) "clues" j.Journal.clues j'.Journal.clues;
          Alcotest.(check string) "payload"
            (Bytes.to_string j.Journal.payload)
            (Bytes.to_string j'.Journal.payload))
    (journals_for_codec ())

let test_codec_rejects_corruption () =
  let j = List.nth (journals_for_codec ()) 1 in
  let enc = Journal_codec.encode j in
  (* truncation *)
  Alcotest.(check bool) "truncated" true
    (Journal_codec.decode (Bytes.sub enc 0 (Bytes.length enc - 3)) = None);
  (* trailing garbage *)
  Alcotest.(check bool) "trailing garbage" true
    (Journal_codec.decode (Bytes.cat enc (Bytes.of_string "x")) = None);
  (* bad magic *)
  let bad = Bytes.copy enc in
  Bytes.set bad 0 'X';
  Alcotest.(check bool) "bad magic" true (Journal_codec.decode bad = None);
  Alcotest.(check bool) "empty" true (Journal_codec.decode Bytes.empty = None)

let prop_codec_random_bytes_safe =
  QCheck.Test.make ~name:"codec never raises on random bytes" ~count:200
    QCheck.(string_of_size (QCheck.Gen.int_range 0 64))
    (fun s ->
      match Journal_codec.decode (Bytes.of_string s) with
      | Some _ | None -> true)

(* --- receipts / blocks ---------------------------------------------------------- *)

let test_receipt_signing () =
  let priv, pub = Ecdsa.generate ~seed:"lsp" in
  let r =
    Receipt.make ~lsp_priv:priv ~jsn:3 ~request_hash:(Hash.digest_string "r")
      ~tx_hash:(Hash.digest_string "t") ~block_hash:Hash.zero ~timestamp:99L
  in
  Alcotest.(check bool) "verifies" true (Receipt.verify ~lsp_pub:pub r);
  Alcotest.(check bool) "not final without block hash" false (Receipt.is_final r);
  let r2 = { r with Receipt.block_hash = Hash.digest_string "b" } in
  Alcotest.(check bool) "final with block hash" true (Receipt.is_final r2);
  Alcotest.(check bool) "field change breaks signature" false
    (Receipt.verify ~lsp_pub:pub { r with Receipt.jsn = 4 })

let test_block_hash_chain () =
  let mk height prev =
    {
      Block.height;
      start_jsn = height * 4;
      count = 4;
      prev_hash = prev;
      journal_commitment = Hash.digest_string "jc";
      clue_root = Hash.digest_string "cr";
      world_state_root = Hash.zero;
      tx_root = Hash.digest_string ("tx" ^ string_of_int height);
      timestamp = Int64.of_int height;
    }
  in
  let b0 = mk 0 Hash.zero in
  let b1 = mk 1 (Block.hash b0) in
  Alcotest.(check bool) "links" true (Block.links_to b0 b1);
  Alcotest.(check bool) "wrong prev" false
    (Block.links_to b0 { b1 with Block.prev_hash = Hash.zero });
  Alcotest.(check bool) "wrong height" false
    (Block.links_to b0 { b1 with Block.height = 2 });
  Alcotest.(check bool) "gap in jsns" false
    (Block.links_to b0 { b1 with Block.start_jsn = 5 });
  (* block hash covers the tx root *)
  Alcotest.(check bool) "hash covers content" false
    (Hash.equal (Block.hash b0)
       (Block.hash { b0 with Block.tx_root = Hash.zero }))

let suite =
  [
    tc "roles registry" `Quick test_roles;
    tc "crypto profile: real" `Quick test_crypto_profile_real;
    tc "crypto profile: simulated" `Quick test_crypto_profile_simulated;
    tc "journal tx-hash sensitivity" `Quick test_journal_tx_hash_sensitivity;
    tc "request digest" `Quick test_request_digest;
    tc "codec roundtrip (all kinds)" `Quick test_codec_roundtrip;
    tc "codec corruption" `Quick test_codec_rejects_corruption;
    qcheck prop_codec_random_bytes_safe;
    tc "receipt signing" `Quick test_receipt_signing;
    tc "block hash chain" `Quick test_block_hash_chain;
  ]
