test/main.mli:
