test/test_storage.ml: Alcotest Bitmap_index Bytes Clock Filename Hashtbl Int64 Kv_store Latency_model Ledger_storage List Option QCheck QCheck_alcotest Stream_store Sys
