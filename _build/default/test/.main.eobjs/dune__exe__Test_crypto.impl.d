test/test_crypto.ml: Alcotest Array Bytes Char Ecdsa Hash Hmac_sha256 Ledger_crypto List Multisig Printf QCheck QCheck_alcotest Secp256k1 Sha256 Sha3 String Uint256
