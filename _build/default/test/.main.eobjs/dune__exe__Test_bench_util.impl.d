test/test_bench_util.ml: Alcotest Array Bytes Clock Det_rng Hashtbl Ledger_bench_util Ledger_storage Option Printf Table Timing Workload
