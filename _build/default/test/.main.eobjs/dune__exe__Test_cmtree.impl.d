test/test_cmtree.ml: Alcotest Clue_skiplist Cm_tree Fun Hash Hashtbl Ledger_cmtree Ledger_crypto List Option Printf QCheck QCheck_alcotest
