test/test_replica.ml: Alcotest Audit Bytes Char Clock Crypto_profile Filename Hash Ledger Ledger_core Ledger_crypto Ledger_storage Ledger_timenotary Printf Replica Roles Service Sys T_ledger Tsa
