test/test_timenotary.ml: Alcotest Attack Clock Hash Int64 Ledger_crypto Ledger_storage Ledger_timenotary List Pegging Printf T_ledger Tsa
