test/test_merkle.ml: Accumulator Alcotest Array Bamt Bim Fam Forest Fun Hash Int64 Ledger_crypto Ledger_merkle List Merkle_tree Printf Proof QCheck QCheck_alcotest Range_proof Shrubs
