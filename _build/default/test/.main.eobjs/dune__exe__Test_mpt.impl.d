test/test_mpt.ml: Accumulator Alcotest Array Bytes Ccmpt Fun Gen Hash Hashtbl Ledger_crypto Ledger_merkle Ledger_mpt List Mpt Nibble Option Printf QCheck QCheck_alcotest
