test/test_edge_cases.ml: Alcotest Audit Bytes Clock Crypto_profile Fam Hash Ledger Ledger_core Ledger_crypto Ledger_merkle Ledger_storage List Option Printf Receipt Roles Shrubs
