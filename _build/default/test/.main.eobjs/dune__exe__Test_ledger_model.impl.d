test/test_ledger_model.ml: Audit Bytes Clock Crypto_profile Ledger Ledger_core Ledger_storage Ledger_timenotary List Option Printf QCheck QCheck_alcotest Receipt Roles T_ledger Tsa
