(* Tests for the client-facing surface: the unified Verify API,
   the Ledger_client offline state, and occult-by-clue. *)

open Ledger_crypto
open Ledger_storage
open Ledger_core
open Ledger_merkle
open Ledger_timenotary

let tc = Alcotest.test_case

let make_ledger ?(crypto = Crypto_profile.default_simulated) () =
  let clock = Clock.create () in
  let pool = Tsa.pool [ Tsa.create ~endorse_rtt_ms:1. ~clock "t" ] in
  let tl = T_ledger.create ~clock ~tsa:pool () in
  let config =
    { Ledger.default_config with name = "client-api"; block_size = 4;
      fam_delta = 4; crypto }
  in
  let ledger = Ledger.create ~config ~t_ledger:tl ~tsa:pool ~clock () in
  let user, key = Ledger.new_member ledger ~name:"user" ~role:Roles.Regular_user in
  let dba, dba_key = Ledger.new_member ledger ~name:"dba" ~role:Roles.Dba in
  let reg, reg_key = Ledger.new_member ledger ~name:"reg" ~role:Roles.Regulator in
  let receipts =
    List.init 12 (fun i ->
        Clock.advance_ms clock 50.;
        Ledger.append ledger ~member:user ~priv:key
          ~clues:[ "k" ^ string_of_int (i mod 3) ]
          (Bytes.of_string (Printf.sprintf "v%d" i)))
  in
  Ledger.seal_block ledger;
  (clock, ledger, receipts, (dba, dba_key), (reg, reg_key))

(* --- Verify API ---------------------------------------------------------- *)

let test_verify_api_existence () =
  let _, ledger, _, _, _ = make_ledger () in
  List.iter
    (fun level ->
      let o =
        Verify_api.verify ledger ~level
          (Verify_api.Existence { jsn = 3; payload_digest = None })
      in
      Alcotest.(check bool) "existence ok" true o.Verify_api.ok)
    [ Verify_api.Server; Verify_api.Client ];
  let o =
    Verify_api.verify ledger ~level:Verify_api.Client
      (Verify_api.Existence { jsn = 999; payload_digest = None })
  in
  Alcotest.(check bool) "out of range" false o.Verify_api.ok;
  (* payload digest binding *)
  let good = Hash.digest_bytes (Bytes.of_string "v3") in
  let o =
    Verify_api.verify ledger ~level:Verify_api.Server
      (Verify_api.Existence { jsn = 3; payload_digest = Some good })
  in
  Alcotest.(check bool) "digest binds" true o.Verify_api.ok;
  let o =
    Verify_api.verify ledger ~level:Verify_api.Server
      (Verify_api.Existence
         { jsn = 3; payload_digest = Some (Hash.digest_string "no") })
  in
  Alcotest.(check bool) "wrong digest" false o.Verify_api.ok

let test_verify_api_clue () =
  let _, ledger, _, _, _ = make_ledger () in
  List.iter
    (fun level ->
      let o = Verify_api.verify ledger ~level (Verify_api.Clue { key = "k1" }) in
      Alcotest.(check bool) "clue ok" true o.Verify_api.ok)
    [ Verify_api.Server; Verify_api.Client ];
  let o =
    Verify_api.verify ledger ~level:Verify_api.Client
      (Verify_api.Clue_range { key = "k1"; first = 1; last = 2 })
  in
  Alcotest.(check bool) "range ok" true o.Verify_api.ok;
  let o =
    Verify_api.verify ledger ~level:Verify_api.Client
      (Verify_api.Clue_range { key = "k1"; first = 2; last = 99 })
  in
  Alcotest.(check bool) "bad range" false o.Verify_api.ok;
  let o =
    Verify_api.verify ledger ~level:Verify_api.Server
      (Verify_api.Clue { key = "missing" })
  in
  Alcotest.(check bool) "unknown clue" false o.Verify_api.ok

let test_verify_api_batch () =
  let _, ledger, receipts, _, _ = make_ledger () in
  let targets =
    [
      Verify_api.Existence { jsn = 0; payload_digest = None };
      Verify_api.Clue { key = "k0" };
      Verify_api.Receipt_check (List.hd receipts);
    ]
  in
  let outcomes, ok = Verify_api.verify_all ledger ~level:Verify_api.Client targets in
  Alcotest.(check int) "all outcomes" 3 (List.length outcomes);
  Alcotest.(check bool) "conjunction" true ok;
  (* one failure fails the batch *)
  let targets = Verify_api.Clue { key = "missing" } :: targets in
  let _, ok = Verify_api.verify_all ledger ~level:Verify_api.Client targets in
  Alcotest.(check bool) "batch fails" false ok

let test_verify_api_detects_repudiation () =
  let _, ledger, receipts, _, _ = make_ledger () in
  Ledger.Unsafe.rewrite_payload_consistent ledger ~jsn:0
    (Bytes.of_string "rewritten");
  let o =
    Verify_api.verify ledger ~level:Verify_api.Client
      (Verify_api.Receipt_check (List.nth receipts 0))
  in
  Alcotest.(check bool) "receipt check fails after rewrite" false o.Verify_api.ok

(* --- Ledger_client ---------------------------------------------------------- *)

let test_client_receipts () =
  (* Real crypto: the client verifies receipts with genuine ECDSA *)
  let _, ledger, receipts, _, _ = make_ledger ~crypto:Crypto_profile.Real () in
  let client =
    Ledger_client.create ~name:"c" ~lsp_pub:(Ledger.lsp_public_key ledger)
  in
  List.iter (Ledger_client.remember_receipt client) receipts;
  Alcotest.(check int) "kept" (List.length receipts)
    (List.length (Ledger_client.receipts client));
  Alcotest.(check bool) "lookup" true (Ledger_client.receipt_for client ~jsn:2 <> None);
  let tx jsn = if jsn < Ledger.size ledger then Some (Ledger.tx_hash_of ledger jsn) else None in
  (match Ledger_client.check_receipt_against client ~ledger_tx_hash:tx ~jsn:2 with
  | `Ok -> ()
  | _ -> Alcotest.fail "honest ledger should check out");
  (match Ledger_client.check_receipt_against client ~ledger_tx_hash:tx ~jsn:99 with
  | `No_receipt -> ()
  | _ -> Alcotest.fail "expected no receipt");
  (* repudiation *)
  Ledger.Unsafe.rewrite_payload_consistent ledger ~jsn:2 (Bytes.of_string "evil");
  match Ledger_client.check_receipt_against client ~ledger_tx_hash:tx ~jsn:2 with
  | `Repudiated -> ()
  | _ -> Alcotest.fail "expected repudiation"

let test_client_anchor () =
  let _, ledger, _, _, _ = make_ledger () in
  let client =
    Ledger_client.create ~name:"c" ~lsp_pub:(Ledger.lsp_public_key ledger)
  in
  Alcotest.(check int) "no anchor" 0 (Ledger_client.anchored_upto client);
  Alcotest.(check bool) "stale without anchor" true
    (Ledger_client.stale client ~current_size:(Ledger.size ledger));
  Ledger_client.adopt_anchor client ~anchor:(Ledger.make_anchor ledger)
    ~commitment:(Ledger.commitment ledger);
  Alcotest.(check int) "anchored" (Ledger.size ledger)
    (Ledger_client.anchored_upto client);
  Alcotest.(check bool) "fresh" false
    (Ledger_client.stale client ~current_size:(Ledger.size ledger));
  (* offline existence check through the anchor *)
  let anchor, _ = Option.get (Ledger_client.anchor client) in
  let p = Ledger.get_proof_anchored ledger anchor 1 in
  Alcotest.(check bool) "offline check" true
    (Ledger_client.check_existence client ~jsn:1
       ~leaf:(Ledger.tx_hash_of ledger 1)
       ~current_commitment:(Ledger.commitment ledger) p);
  Alcotest.(check bool) "wrong leaf rejected" false
    (Ledger_client.check_existence client ~jsn:1
       ~leaf:(Hash.digest_string "forged")
       ~current_commitment:(Ledger.commitment ledger) p)

(* --- occult by clue ------------------------------------------------------------ *)

let test_occult_by_clue () =
  let _, ledger, _, dba, reg = make_ledger () in
  let before = Ledger.clue_jsns ledger "k1" in
  Alcotest.(check int) "clue has 4 journals" 4 (List.length before);
  (match
     Ledger.occult_by_clue ledger ~clue:"k1" ~mode:Ledger.Sync
       ~signers:[ dba; reg ] ~reason:"court order"
   with
  | Ok occults -> Alcotest.(check int) "one occult journal each" 4 (List.length occults)
  | Error e -> Alcotest.fail e);
  List.iter
    (fun jsn ->
      Alcotest.(check bool) "hidden" true (Ledger.is_occulted ledger jsn);
      Alcotest.(check bool) "erased" true (Ledger.payload ledger jsn = None))
    before;
  (* other clues untouched *)
  List.iter
    (fun jsn ->
      Alcotest.(check bool) "other clue intact" true
        (Ledger.payload ledger jsn <> None))
    (Ledger.clue_jsns ledger "k0");
  (* idempotence: nothing left to occult *)
  (match
     Ledger.occult_by_clue ledger ~clue:"k1" ~mode:Ledger.Sync
       ~signers:[ dba; reg ] ~reason:"again"
   with
  | Ok _ -> Alcotest.fail "expected error on second pass"
  | Error _ -> ());
  (* ledger still audits clean: Protocol 2 end to end *)
  let report = Audit.run ledger in
  Alcotest.(check bool) "post-occult-by-clue audit" true report.Audit.ok;
  (* and the clue's lineage is still verifiable through retained hashes *)
  Alcotest.(check bool) "clue still verifiable" true
    (Ledger.verify_clue_server ledger ~clue:"k1")

let base_suite =
  [
    tc "verify api: existence" `Quick test_verify_api_existence;
    tc "verify api: clue" `Quick test_verify_api_clue;
    tc "verify api: batch" `Quick test_verify_api_batch;
    tc "verify api: repudiation" `Quick test_verify_api_detects_repudiation;
    tc "ledger client: receipts" `Slow test_client_receipts;
    tc "ledger client: anchor" `Quick test_client_anchor;
    tc "occult by clue" `Quick test_occult_by_clue;
  ]

let test_client_growth_check () =
  let clock, ledger, _, _, _ = make_ledger () in
  let client =
    Ledger_client.create ~name:"grower" ~lsp_pub:(Ledger.lsp_public_key ledger)
  in
  Ledger_client.adopt_anchor client ~anchor:(Ledger.make_anchor ledger)
    ~commitment:(Ledger.commitment ledger);
  let old_size = Ledger_client.anchored_upto client in
  (* ledger grows honestly *)
  let user = Option.get (Roles.find_by_name (Ledger.registry ledger) "user") in
  let key, _ = Ecdsa.generate ~seed:"client-api:user" in
  for i = 0 to 9 do
    Clock.advance_ms clock 10.;
    ignore
      (Ledger.append ledger ~member:user ~priv:key ~clues:[ "k0" ]
         (Bytes.of_string (Printf.sprintf "new %d" i)))
  done;
  let delta = (Ledger.config ledger).Ledger.fam_delta in
  let proof = Ledger.prove_extension ledger ~old_size in
  Alcotest.(check bool) "honest growth accepted" true
    (Ledger_client.check_growth client ~delta ~new_size:(Ledger.size ledger)
       ~new_commitment:(Ledger.commitment ledger) proof);
  Alcotest.(check bool) "ledger-side verify agrees" true
    (Ledger.verify_extension ledger ~old_size
       ~old_peaks:(Fam.anchor_peaks (fst (Option.get (Ledger_client.anchor client))))
       proof);
  (* a history rewrite breaks the growth check *)
  Ledger.Unsafe.rewrite_payload_consistent ledger ~jsn:2
    (Bytes.of_string "rewritten history");
  (* the LSP would have to rebuild its fam; simulate by constructing what
     it can offer: the same proof no longer matches the old anchor if the
     commitment changed... here the fam still holds old leaves, so instead
     check that a proof against a *different* ledger's state fails *)
  let clock2 = Clock.create () in
  let other = Ledger.create ~clock:clock2 () in
  let m2, k2 = Ledger.new_member other ~name:"m2" ~role:Roles.Regular_user in
  for i = 0 to Ledger.size ledger - 1 do
    ignore
      (Ledger.append other ~member:m2 ~priv:k2
         (Bytes.of_string (Printf.sprintf "forged %d" i)))
  done;
  let forged_proof = Ledger.prove_extension other ~old_size in
  Alcotest.(check bool) "forged lineage rejected" false
    (Ledger_client.check_growth client ~delta:(Ledger.config other).Ledger.fam_delta
       ~new_size:(Ledger.size other)
       ~new_commitment:(Ledger.commitment other) forged_proof)

let growth_suite = [ tc "client growth check" `Quick test_client_growth_check ]



let test_occulted_clue_client_verification () =
  (* Protocol 2 through the full client-side clue path: after occulting a
     journal inside a clue, the clue's client verification still passes
     using retained hashes *)
  let _, ledger, _, dba, reg = make_ledger () in
  (match
     Ledger.occult ledger ~target_jsn:(List.hd (Ledger.clue_jsns ledger "k2"))
       ~mode:Ledger.Sync ~signers:[ dba; reg ] ~reason:"pii"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let proof = Option.get (Ledger.prove_clue ledger ~clue:"k2" ()) in
  Alcotest.(check bool) "client clue verify with occulted member" true
    (Ledger.verify_clue_client ledger proof);
  (* the Verify API agrees at both levels *)
  List.iter
    (fun level ->
      let o = Verify_api.verify ledger ~level (Verify_api.Clue { key = "k2" }) in
      Alcotest.(check bool) "verify api post-occult" true o.Verify_api.ok)
    [ Verify_api.Server; Verify_api.Client ]

let occult_clue_suite =
  [ tc "occulted clue client verification" `Quick test_occulted_clue_client_verification ]

let suite = base_suite @ growth_suite @ occult_clue_suite
