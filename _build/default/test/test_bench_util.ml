(* Tests for the bench utilities: deterministic RNG, workloads, timing and
   table rendering. *)

open Ledger_storage
open Ledger_bench_util

let tc = Alcotest.test_case

let test_det_rng_deterministic () =
  let a = Det_rng.create ~seed:42 and b = Det_rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Det_rng.next a) (Det_rng.next b)
  done;
  let c = Det_rng.create ~seed:43 in
  Alcotest.(check bool) "different seeds diverge" false
    (Det_rng.next (Det_rng.create ~seed:42) = Det_rng.next c)

let test_det_rng_bounds () =
  let rng = Det_rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Det_rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Det_rng.int: bound")
    (fun () -> ignore (Det_rng.int rng 0));
  let b = Det_rng.bytes rng 33 in
  Alcotest.(check int) "bytes size" 33 (Bytes.length b);
  let arr = [| "x"; "y"; "z" |] in
  for _ = 1 to 20 do
    let picked = Det_rng.pick rng arr in
    Alcotest.(check bool) "pick member" true
      (Array.exists (fun s -> s = picked) arr)
  done

let test_det_rng_distribution () =
  (* crude uniformity check over 8 buckets *)
  let rng = Det_rng.create ~seed:11 in
  let buckets = Array.make 8 0 in
  let n = 8000 in
  for _ = 1 to n do
    let b = Det_rng.int rng 8 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d balanced" i)
        true
        (c > (n / 8) - 300 && c < (n / 8) + 300))
    buckets

let test_workloads () =
  let rng = Det_rng.create ~seed:3 in
  let w = Workload.notarization ~rng ~n:50 ~payload_size:128 in
  Alcotest.(check int) "payload count" 50 (Array.length w.Workload.payloads);
  Alcotest.(check int) "payload size" 128 (Bytes.length w.Workload.payloads.(0));
  Alcotest.(check bool) "unique notarization ids" true
    (Array.length
       (Array.of_seq
          (Hashtbl.to_seq_keys
             (let h = Hashtbl.create 64 in
              Array.iter (fun c -> Hashtbl.replace h c ()) w.Workload.clues;
              h)))
    = 50);
  let lw = Workload.lineage ~rng ~clue_count:10 ~min_entries:2 ~max_entries:5
             ~payload_size:16 in
  let per_clue = Hashtbl.create 10 in
  Array.iter
    (fun c ->
      Hashtbl.replace per_clue c (1 + Option.value ~default:0 (Hashtbl.find_opt per_clue c)))
    lw.Workload.clues;
  Alcotest.(check int) "all clues used" 10 (Hashtbl.length per_clue);
  Hashtbl.iter
    (fun _ n -> Alcotest.(check bool) "entries in range" true (n >= 2 && n <= 5))
    per_clue

let test_size_labels () =
  Alcotest.(check string) "plain" "999" (Workload.size_label 999);
  Alcotest.(check string) "K" "32K" (Workload.size_label (32 * 1024));
  Alcotest.(check string) "M" "2M" (Workload.size_label (2 * 1024 * 1024));
  Alcotest.(check string) "G" "1G" (Workload.size_label (1 lsl 30))

let test_timing () =
  let clock = Clock.create () in
  let (), ms =
    Timing.simulated_ms clock (fun () -> Clock.advance_ms clock 12.5)
  in
  Alcotest.(check (float 0.01)) "simulated ms" 12.5 ms;
  let tps =
    Timing.simulated_throughput clock ~n:100 (fun _ -> Clock.advance_ms clock 1.)
  in
  Alcotest.(check (float 1.)) "simulated tps" 1000. tps;
  let no_cost = Timing.simulated_throughput clock ~n:10 (fun _ -> ()) in
  Alcotest.(check bool) "free ops are infinite" true (no_cost = infinity);
  let _, wall = Timing.wall (fun () -> ()) in
  Alcotest.(check bool) "wall sane" true (wall >= 0. && wall < 1.)

let test_human_formats () =
  Alcotest.(check string) "rate K" "1.5K" (Table.human_rate 1500.);
  Alcotest.(check string) "rate M" "2.50M" (Table.human_rate 2_500_000.);
  Alcotest.(check string) "rate small" "42.0" (Table.human_rate 42.);
  Alcotest.(check string) "ms" "2.50ms" (Table.human_ms 2.5);
  Alcotest.(check string) "s" "1.50s" (Table.human_ms 1500.);
  Alcotest.(check string) "us" "500.0us" (Table.human_ms 0.5)

let suite =
  [
    tc "det rng determinism" `Quick test_det_rng_deterministic;
    tc "det rng bounds" `Quick test_det_rng_bounds;
    tc "det rng distribution" `Quick test_det_rng_distribution;
    tc "workloads" `Quick test_workloads;
    tc "size labels" `Quick test_size_labels;
    tc "timing helpers" `Quick test_timing;
    tc "human formats" `Quick test_human_formats;
  ]
