(* Tests for remote replication: an external auditor pulls the whole
   ledger over bytes, gets a verified replica, audits it locally — and a
   lying transport is refused. *)

open Ledger_crypto
open Ledger_storage
open Ledger_core
open Ledger_timenotary

let tc = Alcotest.test_case

let fresh_dir () =
  let d = Filename.temp_file "replica" "pull" in
  Sys.remove d;
  d

let build_remote () =
  let clock = Clock.create () in
  let pool = Tsa.pool [ Tsa.create ~endorse_rtt_ms:1. ~clock "r" ] in
  let tl = T_ledger.create ~clock ~tsa:pool () in
  let config =
    { Ledger.default_config with name = "remote"; block_size = 4; fam_delta = 3;
      crypto = Crypto_profile.Real }
  in
  let ledger = Ledger.create ~config ~t_ledger:tl ~tsa:pool ~clock () in
  let user, key = Ledger.new_member ledger ~name:"ruser" ~role:Roles.Regular_user in
  let dba, dba_key = Ledger.new_member ledger ~name:"rdba" ~role:Roles.Dba in
  let reg, reg_key = Ledger.new_member ledger ~name:"rreg" ~role:Roles.Regulator in
  for i = 0 to 9 do
    Clock.advance_ms clock 50.;
    ignore
      (Ledger.append ledger ~member:user ~priv:key
         ~clues:[ "rc" ^ string_of_int (i mod 2) ]
         (Bytes.of_string (Printf.sprintf "remote %d" i)))
  done;
  Clock.advance_ms clock 1100.;
  (match Ledger.anchor_via_t_ledger ledger with Ok _ -> () | Error _ -> assert false);
  Ledger.seal_block ledger;
  (clock, ledger, config, (tl, pool), (dba, dba_key), (reg, reg_key))

let test_pull_and_audit () =
  let clock, remote, config, (tl, pool), _, _ = build_remote () in
  let transport = Service.handle remote in
  match
    Replica.pull ~transport ~config ~t_ledger:tl ~tsa:pool ~clock
      ~scratch_dir:(fresh_dir ()) ()
  with
  | Error e -> Alcotest.fail e
  | Ok replica ->
      Alcotest.(check int) "size" (Ledger.size remote) (Ledger.size replica);
      Alcotest.(check bool) "same commitment" true
        (Hash.equal (Ledger.commitment remote) (Ledger.commitment replica));
      Alcotest.(check bool) "blocks match" true
        (Ledger.block_count remote = Ledger.block_count replica);
      (* the auditor audits the *replica*, never touching the remote *)
      let report = Audit.run replica in
      Alcotest.(check bool) "replica audit passes" true report.Audit.ok;
      (* clue verification works on the replica *)
      Alcotest.(check bool) "clue verify on replica" true
        (Ledger.verify_clue_server replica ~clue:"rc1")

let test_pull_detects_lying_transport () =
  let clock, remote, config, (tl, pool), _, _ = build_remote () in
  (* a MITM that flips a byte inside journal responses *)
  let tamper response =
    if Bytes.length response > 60 then begin
      let b = Bytes.copy response in
      let off = Bytes.length b - 20 in
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x10));
      b
    end
    else response
  in
  let evil_transport req =
    let resp = Service.handle remote req in
    match Service.decode_request req with
    | Some (Service.Get_journal _) -> tamper resp
    | _ -> resp
  in
  (match
     Replica.pull ~transport:evil_transport ~config ~t_ledger:tl ~tsa:pool
       ~clock ~scratch_dir:(fresh_dir ()) ()
   with
  | Ok _ -> Alcotest.fail "tampered journals accepted"
  | Error _ -> ());
  (* a service lying about its identity is refused *)
  match
    Replica.pull ~transport:(Service.handle remote)
      ~config:{ config with Ledger.name = "other" } ~t_ledger:tl ~tsa:pool
      ~clock ~scratch_dir:(fresh_dir ()) ()
  with
  | Ok _ -> Alcotest.fail "name mismatch accepted"
  | Error _ -> ()

let test_pull_after_mutations () =
  let clock, remote, config, (tl, pool), dba, reg = build_remote () in
  (match
     Ledger.occult remote ~target_jsn:2 ~mode:Ledger.Sync
       ~signers:[ dba; reg ] ~reason:"pii"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  match
    Replica.pull ~transport:(Service.handle remote) ~config ~t_ledger:tl
      ~tsa:pool ~clock ~scratch_dir:(fresh_dir ()) ()
  with
  | Error e -> Alcotest.fail e
  | Ok replica ->
      Alcotest.(check bool) "occulted journal erased in replica" true
        (Ledger.payload replica 2 = None);
      Alcotest.(check bool) "occult bit replicated" true
        (Ledger.is_occulted replica 2);
      Alcotest.(check bool) "replica audit (Protocol 2)" true
        (Audit.run replica).Audit.ok

let suite =
  [
    tc "pull and audit" `Slow test_pull_and_audit;
    tc "lying transport refused" `Slow test_pull_detects_lying_transport;
    tc "pull after occult" `Slow test_pull_after_mutations;
  ]
