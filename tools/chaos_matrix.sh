#!/bin/sh
# Run the scripted survivability matrix (chaos_check matrix) under a
# handful of seed offsets, via the LEDGERDB_CHAOS_SEED override.  Every
# (scenario, seed) pair must end in PASS; the first failing seed stops
# the sweep and its offset reproduces the run byte-identically:
#
#   LEDGERDB_CHAOS_SEED=<offset> dune exec bin/chaos_check.exe matrix
#
#   chaos_matrix.sh <chaos-check-exe> [offset...]
#       default offsets: 0 17 4242
set -eu

[ $# -ge 1 ] || { echo "usage: chaos_matrix.sh <chaos-check-exe> [offset...]" >&2; exit 2; }
exe=$1
shift
[ $# -ge 1 ] || set -- 0 17 4242

for offset in "$@"; do
  echo "chaos_matrix: offset $offset"
  if ! LEDGERDB_CHAOS_SEED="$offset" "$exe" matrix; then
    status=$?
    echo "chaos_matrix: offset $offset failed (exit $status); reproduce with" >&2
    echo "  LEDGERDB_CHAOS_SEED=$offset dune exec bin/chaos_check.exe matrix" >&2
    exit "$status"
  fi
done
echo "chaos_matrix: all offsets passed"
