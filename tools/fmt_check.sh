#!/bin/sh
# Formatting gate: runs ocamlformat --check over the source tree when the
# formatter is installed, and skips cleanly (exit 0, with a notice) when
# it is not, so `dune runtest` works on minimal toolchains too.
set -u

if ! command -v ocamlformat >/dev/null 2>&1; then
  echo "fmt check skipped: ocamlformat not installed"
  exit 0
fi

root=$(dirname "$0")/..
status=0
for f in $(find "$root/lib" "$root/bin" "$root/test" "$root/examples" \
    "$root/bench" -name '*.ml' -o -name '*.mli' 2>/dev/null); do
  if ! ocamlformat --check "$f" 2>/dev/null; then
    echo "fmt check: $f is not formatted"
    status=1
  fi
done
[ "$status" -eq 0 ] && echo "fmt check passed"
exit $status
