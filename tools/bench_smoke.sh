#!/bin/sh
# Smoke-check the machine-readable bench output.
#
#   bench_smoke.sh --run <bench-exe> <outdir>
#       run the fixed-seed smoke benches, writing BENCH_*.json to <outdir>
#
#   bench_smoke.sh --check <BENCH_x.json> <schema.keys>
#       fail if the JSON's key set differs from the checked-in schema
#       (a renamed or dropped metric breaks downstream consumers)
set -eu

usage() {
  echo "usage: bench_smoke.sh --run <bench-exe> <outdir>" >&2
  echo "       bench_smoke.sh --check <json> <schema.keys>" >&2
  exit 2
}

keys_of() {
  # every quoted object key ("name":), sorted and deduplicated
  grep -o '"[^"]*"[[:space:]]*:' "$1" | sed 's/"[[:space:]]*:$/"/' | sort -u
}

case "${1:-}" in
--run)
  [ $# -eq 3 ] || usage
  exe=$2
  outdir=$3
  mkdir -p "$outdir"
  "$exe" micro fig7 batch shard par recover serve query --smoke --json "$outdir"
  ;;
--check)
  [ $# -eq 3 ] || usage
  json=$2
  schema=$3
  [ -f "$json" ] || { echo "bench_smoke: missing $json" >&2; exit 1; }
  [ -f "$schema" ] || { echo "bench_smoke: missing schema $schema" >&2; exit 1; }
  tmp=$(mktemp)
  trap 'rm -f "$tmp"' EXIT
  keys_of "$json" >"$tmp"
  if ! diff -u "$schema" "$tmp"; then
    echo "bench_smoke: key set of $json diverged from $schema" >&2
    echo "bench_smoke: if intentional, regenerate the schema:" >&2
    echo "  grep -o '\"[^\"]*\"[[:space:]]*:' $json | sed 's/\"[[:space:]]*:\$/\"/' | sort -u > $schema" >&2
    exit 1
  fi
  echo "bench_smoke: $json matches $schema"
  ;;
*)
  usage
  ;;
esac
